package sqleval

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"cyclesql/internal/schema"
	"cyclesql/internal/sqlparse"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// wideDB builds two single-column tables of n rows each with no matching
// values, so a cross or non-equi join between them is an n^2 nested loop
// that produces nothing — the worst case the cancellation checks exist
// for.
func wideDB(t testing.TB, n int) *storage.Database {
	t.Helper()
	s := &schema.Schema{
		Name: "wide",
		Tables: []*schema.Table{
			{Name: "L", Columns: []schema.Column{{Name: "a", Type: sqltypes.KindInt, PrimaryKey: true}}},
			{Name: "R", Columns: []schema.Column{{Name: "b", Type: sqltypes.KindInt, PrimaryKey: true}}},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase(s)
	for i := 0; i < n; i++ {
		db.MustInsert("L", sqltypes.NewInt(int64(i)))
		db.MustInsert("R", sqltypes.NewInt(int64(i+n)))
	}
	return db
}

// TestExecContextPreCancelled pins the promptness contract: a context
// cancelled before the call returns its error before any rows are
// visited, even for a scan/join that would take far longer than the test
// itself.
func TestExecContextPreCancelled(t *testing.T) {
	db := wideDB(t, 4000)
	// L.a < n <= R.b, so the non-equi join visits all 16M pairs but emits
	// none — the live re-execution below stays cheap to materialize.
	stmt, err := sqlparse.Parse("SELECT count(*) FROM L JOIN R ON L.a > R.b")
	if err != nil {
		t.Fatal(err)
	}
	exec := New(db)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := exec.ExecContext(ctx, stmt); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The 4000x4000 pair loop takes far longer than this bound; an
	// up-front check must never enter it.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("pre-cancelled ExecContext took %s", elapsed)
	}
	// The same statement must still execute on a live context (the plan
	// was compiled and cached despite the aborted run).
	if _, err := exec.Exec(stmt); err != nil {
		t.Fatalf("post-cancel Exec: %v", err)
	}
}

// TestExecContextCancelsMidJoin cancels a running non-equi join and
// requires ExecContext to return the context error well before the join
// would have finished.
func TestExecContextCancelsMidJoin(t *testing.T) {
	db := wideDB(t, 4000)
	// Non-equi ON keeps this on the nested-loop path: 16M pair visits.
	stmt, err := sqlparse.Parse("SELECT count(*) FROM L JOIN R ON L.a > R.b")
	if err != nil {
		t.Fatal(err)
	}
	exec := New(db)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := exec.ExecContext(ctx, stmt)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ExecContext did not observe cancellation within 10s")
	}
}

// TestExecContextCancelsCorrelatedSubquery covers the subquery re-entry
// path: each outer row re-enters runProgram, whose entry check must stop
// the scan as soon as the deadline passes.
func TestExecContextCancelsCorrelatedSubquery(t *testing.T) {
	db := wideDB(t, 2000)
	stmt, err := sqlparse.Parse(
		"SELECT count(*) FROM L WHERE EXISTS (SELECT 1 FROM R WHERE R.b < L.a)")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, execErr := New(db).ExecContext(ctx, stmt)
	if !errors.Is(execErr, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", execErr)
	}
}

// TestExecContextNilAndBackground pins the compatibility contract: Exec
// and ExecContext with a nil or background context behave identically and
// never abort.
func TestExecContextNilAndBackground(t *testing.T) {
	db := flightDB(t)
	stmt, err := sqlparse.Parse("SELECT count(*) FROM Flight")
	if err != nil {
		t.Fatal(err)
	}
	exec := New(db)
	want, err := exec.Exec(stmt)
	if err != nil {
		t.Fatal(err)
	}
	for name, ctx := range map[string]context.Context{"nil": nil, "background": context.Background()} {
		got, err := exec.ExecContext(ctx, stmt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sqltypes.BagEqual(got, want) {
			t.Fatalf("%s: result diverged from Exec", name)
		}
	}
}

// TestExecContextParityWithExec runs a representative statement mix under
// a live context and requires results identical to Exec — cancellation
// support must be invisible when the context never fires.
func TestExecContextParityWithExec(t *testing.T) {
	db := flightDB(t)
	stmts := []string{
		"SELECT name FROM Aircraft WHERE distance > 5000 ORDER BY name",
		"SELECT T2.name, count(*) FROM Flight AS T1 JOIN Aircraft AS T2 ON T1.aid = T2.aid GROUP BY T2.name HAVING count(*) > 1",
		"SELECT origin FROM Flight UNION SELECT destination FROM Flight",
		"SELECT name FROM Aircraft WHERE aid IN (SELECT aid FROM Flight WHERE origin = 'Los Angeles')",
	}
	exec := New(db)
	ctx := context.Background()
	for _, sql := range stmts {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		want, err := exec.Exec(stmt)
		if err != nil {
			t.Fatalf("Exec %q: %v", sql, err)
		}
		got, err := exec.ExecContext(ctx, stmt)
		if err != nil {
			t.Fatalf("ExecContext %q: %v", sql, err)
		}
		if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
			t.Fatalf("%q: ExecContext diverged:\n%v\nvs\n%v", sql, got.Rows, want.Rows)
		}
	}
}
