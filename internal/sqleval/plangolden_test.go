package sqleval_test

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"cyclesql/internal/datasets"
	"cyclesql/internal/sqleval"
)

var updatePlans = flag.Bool("update", false, "rewrite the golden plan snapshots")

// TestPlanParity executes every Spider dev gold query (all 270, no slice
// cap) through the cost-based planner, the pre-statistics syntactic
// planner, and the index-free executor, and requires bit-identical
// relations. This is the acceptance bar for cost-based planning: the
// planner may only change HOW rows are found, never WHICH rows come back
// or in what order. The sqlgen half of the bar lives in
// TestPlanParitySQLGen (480 randomized queries over mixed-kind data).
func TestPlanParity(t *testing.T) {
	bench := datasets.Spider()
	if len(bench.Dev) < 270 {
		t.Fatalf("dev set shrank: %d examples", len(bench.Dev))
	}
	for _, ex := range bench.Dev {
		db := bench.DB(ex.DBName)
		cost, err := sqleval.New(db).Exec(ex.Gold)
		if err != nil {
			t.Fatalf("cost planner %q: %v", ex.GoldSQL, err)
		}
		synEx := sqleval.New(db)
		synEx.Syntactic = true
		syntactic, err := synEx.Exec(ex.Gold)
		if err != nil {
			t.Fatalf("syntactic planner %q: %v", ex.GoldSQL, err)
		}
		scan := sqleval.New(db)
		scan.NoIndexes = true
		noIdx, err := scan.Exec(ex.Gold)
		if err != nil {
			t.Fatalf("index-free path %q: %v", ex.GoldSQL, err)
		}
		if !identical(cost, syntactic) {
			t.Fatalf("cost and syntactic planners diverge for %q:\ncost:\n%s\nsyntactic:\n%s",
				ex.GoldSQL, cost, syntactic)
		}
		if !identical(cost, noIdx) {
			t.Fatalf("cost planner and index-free path diverge for %q:\ncost:\n%s\nscan:\n%s",
				ex.GoldSQL, cost, noIdx)
		}
	}
}

// TestPlanGolden pins the cost-based planner's EXPLAIN output for every
// Spider dev gold query against golden snapshots, one file per database
// under testdata/plans. Any plan change — a different probe, a flipped
// build side, a reordered join, a shifted estimate — shows up as a textual
// diff and fails CI until deliberately regenerated with
//
//	go test ./internal/sqleval -run TestPlanGolden -update
//
// The snapshots double as documentation: they are the complete record of
// what the planner chooses on the benchmark workload.
func TestPlanGolden(t *testing.T) {
	bench := datasets.Spider()
	byDB := make(map[string][]datasets.Example)
	for _, ex := range bench.Dev {
		byDB[ex.DBName] = append(byDB[ex.DBName], ex)
	}
	names := make([]string, 0, len(byDB))
	for name := range byDB {
		names = append(names, name)
	}
	sort.Strings(names)

	total := 0
	for _, name := range names {
		exs := byDB[name]
		db := bench.DB(name)
		ex := sqleval.New(db)
		var b strings.Builder
		for qi, e := range exs {
			plan, err := ex.ExplainPlan(context.Background(), e.Gold)
			if err != nil {
				t.Fatalf("%s q%d %q: %v", name, qi, e.GoldSQL, err)
			}
			fmt.Fprintf(&b, "-- q%d: %s\n%s\n", qi, e.GoldSQL, plan)
			total++
		}
		golden := filepath.Join("testdata", "plans", name+".golden")
		if *updatePlans {
			if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden %s (regenerate with -update): %v", golden, err)
		}
		if got := b.String(); got != string(want) {
			t.Errorf("plan snapshot drift for %s: regenerate with -update if deliberate\n%s",
				name, firstDiff(got, string(want)))
		}
	}
	if total < 270 {
		t.Fatalf("only %d plans snapshotted, want all 270 dev queries", total)
	}
}

// firstDiff renders the first few differing lines of two snapshots, enough
// to see which query's plan moved without dumping whole files.
func firstDiff(got, want string) string {
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	var b strings.Builder
	shown := 0
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g == w {
			continue
		}
		fmt.Fprintf(&b, "line %d:\n  got:  %s\n  want: %s\n", i+1, g, w)
		if shown++; shown >= 5 {
			b.WriteString("  ...\n")
			break
		}
	}
	return b.String()
}
