package sqleval

import (
	"testing"

	"cyclesql/internal/sqlparse"
	"cyclesql/internal/sqltypes"
)

// TestIndexPointLookupParity runs probe-eligible queries through all three
// access paths; the compile-time probe must be invisible in the results.
func TestIndexPointLookupParity(t *testing.T) {
	db := flightDB(t)
	for _, sql := range []string{
		// Single-table probes: text key, int key, literal on the left,
		// float literal against an INTEGER column (Compare semantics).
		"SELECT flno FROM Flight WHERE origin = 'Chicago'",
		"SELECT name FROM Aircraft WHERE aid = 3",
		"SELECT name FROM Aircraft WHERE 3 = aid",
		"SELECT name FROM Aircraft WHERE aid = 3.0",
		// No match and equality on a duplicated column.
		"SELECT name FROM Aircraft WHERE aid = 999",
		"SELECT flno FROM Flight WHERE aid = 9",
		// Probe combined with residual filters and a second equality on the
		// same column (only the first becomes the probe).
		"SELECT flno FROM Flight WHERE origin = 'Los Angeles' AND flno > 50",
		"SELECT flno FROM Flight WHERE origin = 'Chicago' AND origin = 'Chicago'",
		"SELECT flno FROM Flight WHERE origin = 'Chicago' AND origin = 'Boston'",
		// Probes inside joins: base side, joined side, both sides.
		"SELECT T1.flno FROM Flight AS T1 JOIN Aircraft AS T2 ON T1.aid = T2.aid WHERE T2.name = 'Airbus A340-300'",
		"SELECT T1.flno FROM Flight AS T1 JOIN Aircraft AS T2 ON T1.aid = T2.aid WHERE T1.origin = 'Chicago'",
		"SELECT T1.flno FROM Flight AS T1 JOIN Aircraft AS T2 ON T1.aid = T2.aid WHERE T1.origin = 'Chicago' AND T2.aid = 9",
		// LEFT JOIN: only the base scan may probe; the joined side must
		// stay a post-join filter to preserve null extension.
		"SELECT T2.name, T1.flno FROM Aircraft AS T2 LEFT JOIN Flight AS T1 ON T1.aid = T2.aid WHERE T2.name = 'SAAB 340'",
		"SELECT T2.name, T1.flno FROM Aircraft AS T2 LEFT JOIN Flight AS T1 ON T1.aid = T2.aid WHERE T1.origin = 'Chicago'",
		// Probe under grouping and ordering.
		"SELECT count(*) FROM Flight WHERE origin = 'Los Angeles'",
		"SELECT destination, count(*) FROM Flight WHERE origin = 'Los Angeles' GROUP BY destination ORDER BY count(*) DESC",
	} {
		runBoth(t, db, sql)
	}
}

// TestIndexJoinReuseParity covers joins whose build side is a whole base
// table — the shape that reuses the column index instead of rebuilding a
// hash table — including LEFT JOIN null extension over the index.
func TestIndexJoinReuseParity(t *testing.T) {
	db := flightDB(t)
	for _, sql := range []string{
		"SELECT T1.flno, T2.name FROM Flight AS T1 JOIN Aircraft AS T2 ON T1.aid = T2.aid",
		"SELECT T1.flno, T2.name FROM Flight AS T1 JOIN Aircraft AS T2 ON T1.aid = T2.aid WHERE T2.distance > 2000",
		"SELECT T2.name, T1.flno FROM Aircraft AS T2 LEFT JOIN Flight AS T1 ON T1.aid = T2.aid",
		"SELECT T1.flno, T2.flno FROM Flight AS T1 JOIN Flight AS T2 ON T1.aid = T2.aid WHERE T1.flno < T2.flno",
	} {
		runBoth(t, db, sql)
	}
}

// TestIndexProbeSeesInserts pins index maintenance end to end: a cached
// probe plan must observe rows inserted after the index was built.
func TestIndexProbeSeesInserts(t *testing.T) {
	db := flightDB(t)
	stmt, err := sqlparse.Parse("SELECT count(*) FROM Flight WHERE origin = 'Chicago'")
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	rel, err := ex.Exec(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0].Int() != 2 {
		t.Fatalf("before insert: %v", rel.Rows)
	}
	db.MustInsert("Flight", sqltypes.NewInt(600), sqltypes.NewInt(2), sqltypes.NewText("Chicago"), sqltypes.NewText("Tokyo"))
	rel, err = ex.Exec(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0].Int() != 3 {
		t.Fatalf("probe missed the inserted row: %v", rel.Rows)
	}
}

// TestIndexProbeSeesMutations pins index invalidation: after Mutate rewrote
// values in place, a cached probe plan must read rebuilt buckets.
func TestIndexProbeSeesMutations(t *testing.T) {
	db := flightDB(t)
	stmt, err := sqlparse.Parse("SELECT count(*) FROM Flight WHERE origin = 'Chicago'")
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	if rel, err := ex.Exec(stmt); err != nil || rel.Rows[0][0].Int() != 2 {
		t.Fatalf("before mutate: %v, %v", rel, err)
	}
	db.Mutate(func(table string, row sqltypes.Row) {
		if table == "flight" && row[2].Text() == "Los Angeles" {
			row[2] = sqltypes.NewText("Chicago")
		}
	})
	rel, err := ex.Exec(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0].Int() != 10 {
		t.Fatalf("probe read stale buckets after mutate: %v", rel.Rows)
	}
}

// TestPlanCacheSharedAcrossIdenticalASTs pins the canonical-SQL keying:
// distinct parses of equivalent SQL share one compiled plan.
func TestPlanCacheSharedAcrossIdenticalASTs(t *testing.T) {
	db := flightDB(t)
	ex := New(db)
	parse := func(sql string) *program {
		t.Helper()
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		p, err := ex.compiled(stmt)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := parse("SELECT flno FROM Flight WHERE origin = 'Chicago' AND aid > 2")
	if again := parse("SELECT flno FROM Flight WHERE origin = 'Chicago' AND aid > 2"); again != base {
		t.Fatal("identical SQL from a distinct AST must share the compiled plan")
	}
	if folded := parse("select flno from FLIGHT where ORIGIN = 'Chicago' and AID > 2"); folded != base {
		t.Fatal("identifier case must fold into the same plan")
	}
	if labeled := parse("SELECT FLNO FROM Flight WHERE origin = 'Chicago' AND aid > 2"); labeled == base {
		t.Fatal("projection label case is observable and must not share a plan")
	}
	if reordered := parse("SELECT flno FROM Flight WHERE aid > 2 AND origin = 'Chicago'"); reordered != base {
		t.Fatal("commutative conjunct order must fold into the same plan")
	}
	if flipped := parse("SELECT flno FROM Flight WHERE origin = 'Chicago' AND 2 < aid"); flipped != base {
		t.Fatal("literal-first range spellings must orient onto the same plan")
	}
	if literal := parse("SELECT flno FROM Flight WHERE origin = 'Boston' AND aid > 2"); literal == base {
		t.Fatal("different literals must not share a plan")
	}
	if textCase := parse("SELECT flno FROM Flight WHERE origin = 'CHICAGO' AND aid > 2"); textCase == base {
		t.Fatal("text literal case is semantic and must not share a plan")
	}
}
