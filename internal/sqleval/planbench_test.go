package sqleval_test

import (
	"testing"

	"cyclesql/internal/sqleval"
	"cyclesql/internal/sqlparse"
)

// The cost-vs-syntactic benchmark pairs below run the two
// TestPlanQualityGate scenarios under the timer; BENCH_PR10.json records
// their numbers. The warm-up execution compiles the plan and builds the
// lazily constructed indexes, so measured iterations see each planner's
// steady state.
func benchSkew(b *testing.B, sql string, syntactic bool) {
	b.Helper()
	db := skewDB(b)
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		b.Fatal(err)
	}
	ex := sqleval.New(db)
	ex.Syntactic = syntactic
	if _, err := ex.Exec(stmt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Exec(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

const (
	skewProbeSQL = "SELECT id FROM Ticket WHERE status = 'open' AND tenant = 17 ORDER BY id"
	skewBuildSQL = "SELECT O.oid FROM Orders AS O JOIN Customer AS C ON O.cid = C.cid WHERE C.score < 10 ORDER BY O.oid"
)

// BenchmarkCostProbeChoice: statistics pick the ~3-row tenant probe over
// the 1000-row status probe.
func BenchmarkCostProbeChoice(b *testing.B) { benchSkew(b, skewProbeSQL, false) }

// BenchmarkSyntacticProbeChoice: first-come conjunct order probes status.
func BenchmarkSyntacticProbeChoice(b *testing.B) { benchSkew(b, skewProbeSQL, true) }

// BenchmarkCostBuildSide: the selective range prefilters the keyed build
// side before hashing it.
func BenchmarkCostBuildSide(b *testing.B) { benchSkew(b, skewBuildSQL, false) }

// BenchmarkSyntacticBuildSide: index reuse joins every left row, then
// filters the range per candidate pair.
func BenchmarkSyntacticBuildSide(b *testing.B) { benchSkew(b, skewBuildSQL, true) }
