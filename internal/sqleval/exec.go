// Package sqleval executes sqlast statements against a storage.Database.
// It implements the full Spider dialect: equi-joins (inner and left),
// tri-state WHERE logic, grouping with HAVING, the five SQL aggregates
// with DISTINCT, ordering, limits, set operations, and correlated
// subqueries (IN, EXISTS, scalar).
//
// The executor is a two-phase compile-and-execute engine. The compile
// phase (compile.go) runs once per statement: it resolves every column
// reference to a fixed frame coordinate, expands stars, detects equi-join
// keys in ON and WHERE, lowers col = literal conjuncts into hash-index
// point probes and comparison/BETWEEN conjuncts into sorted-index range
// probes, recognizes ORDER BY col [LIMIT k] orderings that can stream off
// a sorted index, pushes the remaining filters below inner joins, and
// lowers every expression into a closure. The execute phase reads point
// lookups and range spans straight off lazily built storage indexes,
// streams ordered output (stream.go) in index order with early cutoff
// under LIMIT, streams rows through hash equi-joins (single-column build
// sides reuse the table's column index and multi-key build sides its
// composite index instead of rebuilding a hash table per execution;
// otherwise the build side is chosen by cardinality, with a nested-loop
// fallback for non-equi conditions), evaluates the pre-bound closures
// directly against flat rows — no per-row environment allocation, no name
// lookups — and uses compact binary row keys (sqltypes.AppendKey) for
// every dedup, grouping, and join-matching structure. Compiled plans are cached per executor, first by
// statement identity and then by canonical SQL (sqlnorm.CacheKey), so
// re-executing a statement — or a textually identical candidate arriving
// as a distinct AST from another beam — skips straight to execution.
// Statements must not be mutated between executions through the same
// executor.
//
// An Executor is safe for concurrent Exec calls: execution state (the
// subquery-depth guard, row contexts, scratch buffers) lives on the call
// stack, the plan cache is guarded by a read-mostly lock, and the storage
// layer guards its lazy index builds. The NestedLoopOnly and NoIndexes
// flags must be set before the first Exec and not changed afterwards, and
// the database contents must not be mutated while executions are in
// flight (the store itself documents the same reader/writer contract).
//
// Cancellation: ExecContext aborts a running query when its context is
// cancelled. The context is checked on entry to every program (so a
// statement — or a correlated subquery evaluated per outer row — never
// starts against a dead context) and then polled every
// cancelCheckInterval rows inside the scan-filter, join, and projection
// inner loops, so even a single pathological cross join returns within a
// bounded number of row visits of the cancellation. Exec is ExecContext
// with a background context — the paper's sequential loop and the many
// one-shot executions in this repository pay no cancellation plumbing.
package sqleval

import (
	"context"
	"fmt"
	"sync"

	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqlnorm"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// Executor evaluates SELECT statements against one database.
type Executor struct {
	db *storage.Database
	// mu guards the two plan maps; compiled plans themselves are immutable
	// after compilation, so concurrent executions share them freely.
	mu sync.RWMutex
	// plans caches compiled programs by statement identity (the fast path
	// for re-executing the same AST), plansByKey by canonical SQL, so
	// textually identical statements arriving as distinct ASTs share one
	// compiled plan. Both maps hold the same programs. Sharing stays sound
	// under cost-based planning because sqlnorm.CacheKey canonicalizes the
	// statement WITH its literals: two statements can only share a key by
	// having identical literals, hence identical estimated selectivities —
	// a plan chosen for one is the plan that would be chosen for the other.
	// Plans are costed against the statistics visible at first compile and
	// deliberately not re-costed as the database grows; callers that want
	// fresh plans after bulk loads use a fresh executor (the serving layer
	// already creates one per snapshot).
	plans      map[*sqlast.SelectStmt]*program
	plansByKey map[string]*program

	// NestedLoopOnly disables equi-join detection, filter pushdown, and
	// index probes so every join runs the nested-loop fallback. It exists
	// to verify that the join paths produce identical relations; set it
	// before the first Exec of a statement (plans are cached per statement).
	NestedLoopOnly bool

	// NoIndexes disables secondary-index probes and index-backed join build
	// sides while keeping hash joins and filter pushdown, so every access
	// path scans Relation.Rows. It exists to verify and benchmark the
	// indexed paths against the scan paths; set it before the first Exec.
	NoIndexes bool

	// Syntactic reverts plan selection to the pre-statistics lowering:
	// first qualifying point probe wins, range probes refuse keyed build
	// sides, joins stay in FROM order. Every choice the cost-based planner
	// makes is output-identical to this mode by construction; TestPlanParity
	// holds it to that. Set before the first Exec.
	Syntactic bool

	// trace, when non-nil, receives actual row counts keyed by plan-node id
	// during execution. It is only ever set on the throwaway executor
	// PlanTree builds for itself, so normal executions — including
	// concurrent ones — pay a single nil check per recording site.
	trace *execTrace
}

// New returns an executor over db.
func New(db *storage.Database) *Executor { return &Executor{db: db} }

// maxSubqueryDepth bounds nesting; benchmark queries nest at most 3 deep.
const maxSubqueryDepth = 16

// maxCachedPlans bounds the per-executor plan cache; long-lived executors
// (the CycleSQL pipeline keeps one per database) reset it on overflow.
const maxCachedPlans = 512

// cancelCheckInterval is how many rows an inner loop visits between
// context polls (power of two so the check compiles to a mask). 1024 rows
// keeps the steady-state cost of cancellation support to one counter
// increment per row while bounding the abort latency of the tightest
// loops to microseconds.
const cancelCheckInterval = 1024

// cancelCheck amortizes ctx.Err polling over inner-loop iterations; the
// zero count means the first poll happens a full interval in, so short
// queries never pay a context read at all.
type cancelCheck struct {
	ctx context.Context
	n   uint
}

// poll returns the context's error every cancelCheckInterval calls, nil
// otherwise.
func (cc *cancelCheck) poll() error {
	cc.n++
	if cc.n&(cancelCheckInterval-1) != 0 {
		return nil
	}
	return cc.ctx.Err()
}

// Exec compiles the statement (or reuses its cached plan) and returns its
// result relation. It never aborts early; callers that need cancellation
// or timeouts use ExecContext.
func (ex *Executor) Exec(stmt *sqlast.SelectStmt) (*sqltypes.Relation, error) {
	//vetcycle:allow ctxflow -- documented one-shot wrapper over ExecContext
	return ex.ExecContext(context.Background(), stmt)
}

// ExecContext is Exec with cancellation: the query aborts with the
// context's error as soon as a cancellation check observes ctx done —
// immediately for a context cancelled before the call, within
// cancelCheckInterval row visits for one cancelled mid-query. The
// CycleSQL loop uses this to abandon in-flight speculative candidate
// executions once an earlier candidate validates, and the batch
// experiment driver to enforce per-example timeouts.
func (ex *Executor) ExecContext(ctx context.Context, stmt *sqlast.SelectStmt) (*sqltypes.Relation, error) {
	if ctx == nil {
		//vetcycle:allow ctxflow -- nil-ctx guard for legacy callers; nothing upstream to thread
		ctx = context.Background()
	}
	prog, err := ex.compiled(stmt)
	if err != nil {
		return nil, err
	}
	return ex.runProgram(ctx, prog, nil, 1)
}

func (ex *Executor) compiled(stmt *sqlast.SelectStmt) (*program, error) {
	ex.mu.RLock()
	if p, ok := ex.plans[stmt]; ok {
		ex.mu.RUnlock()
		return p, nil
	}
	key := sqlnorm.CacheKey(stmt)
	p, ok := ex.plansByKey[key]
	ex.mu.RUnlock()
	if ok {
		ex.storePlan(stmt, key, p)
		return p, nil
	}
	// Compile outside the lock; concurrent compilations of the same
	// statement are idempotent (programs are interchangeable), the last
	// store wins.
	c := &compiler{ex: ex}
	p, err := c.compileStmt(stmt, nil)
	if err != nil {
		return nil, err
	}
	p.nodes = c.nodes
	ex.storePlan(stmt, key, p)
	return p, nil
}

func (ex *Executor) storePlan(stmt *sqlast.SelectStmt, key string, p *program) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if ex.plans == nil {
		ex.plans = make(map[*sqlast.SelectStmt]*program)
		ex.plansByKey = make(map[string]*program)
	} else if len(ex.plans) >= maxCachedPlans {
		clear(ex.plans)
		clear(ex.plansByKey)
	}
	ex.plans[stmt] = p
	ex.plansByKey[key] = p
}

// runProgram executes a compiled program. depth is the current subquery
// nesting (1 for a top-level statement); depth and ctx thread through the
// call chain — and into row contexts, for subquery closures — instead of
// living on the executor, so concurrent executions cannot observe each
// other. The entry check makes an already-cancelled context return before
// any rows are visited, and gives correlated subqueries (re-entered here
// once per outer row) a natural per-row cancellation point.
func (ex *Executor) runProgram(ctx context.Context, p *program, outer *rowCtx, depth int) (*sqltypes.Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if depth > maxSubqueryDepth {
		return nil, fmt.Errorf("sqleval: subquery nesting exceeds %d", maxSubqueryDepth)
	}
	result, err := ex.runCore(ctx, p.cores[0], outer, depth)
	if err != nil {
		return nil, err
	}
	for i, op := range p.ops {
		rhs, err := ex.runCore(ctx, p.cores[i+1], outer, depth)
		if err != nil {
			return nil, err
		}
		result, err = combine(result, rhs, op)
		if err != nil {
			return nil, err
		}
	}
	return result, nil
}

func combine(l, r *sqltypes.Relation, op sqlast.CompoundOp) (*sqltypes.Relation, error) {
	if l.NumCols() != r.NumCols() {
		return nil, fmt.Errorf("sqleval: %s operands have %d vs %d columns", op, l.NumCols(), r.NumCols())
	}
	out := sqltypes.NewRelation(l.Columns...)
	var buf []byte
	switch op {
	case sqlast.UnionAll:
		out.Rows = append(append(out.Rows, l.Rows...), r.Rows...)
	case sqlast.Union:
		seen := make(map[string]struct{}, len(l.Rows))
		for _, rows := range [][]sqltypes.Row{l.Rows, r.Rows} {
			for _, row := range rows {
				buf = row.AppendKey(buf[:0])
				if _, dup := seen[string(buf)]; !dup {
					seen[string(buf)] = struct{}{}
					out.Append(row)
				}
			}
		}
	case sqlast.Intersect:
		inR := make(map[string]struct{}, len(r.Rows))
		for _, row := range r.Rows {
			buf = row.AppendKey(buf[:0])
			inR[string(buf)] = struct{}{}
		}
		seen := make(map[string]struct{})
		for _, row := range l.Rows {
			buf = row.AppendKey(buf[:0])
			if _, hit := inR[string(buf)]; !hit {
				continue
			}
			if _, dup := seen[string(buf)]; !dup {
				seen[string(buf)] = struct{}{}
				out.Append(row)
			}
		}
	case sqlast.Except:
		inR := make(map[string]struct{}, len(r.Rows))
		for _, row := range r.Rows {
			buf = row.AppendKey(buf[:0])
			inR[string(buf)] = struct{}{}
		}
		seen := make(map[string]struct{})
		for _, row := range l.Rows {
			buf = row.AppendKey(buf[:0])
			if _, hit := inR[string(buf)]; hit {
				continue
			}
			if _, dup := seen[string(buf)]; !dup {
				seen[string(buf)] = struct{}{}
				out.Append(row)
			}
		}
	default:
		return nil, fmt.Errorf("sqleval: unknown set operation %q", op)
	}
	return out, nil
}

func (ex *Executor) runCore(ctx context.Context, cc *compiledCore, outer *rowCtx, depth int) (*sqltypes.Relation, error) {
	if cc.stream != nil {
		return ex.runStream(ctx, cc, outer, depth)
	}
	rows, owned, err := ex.buildFrom(ctx, cc, outer, depth)
	if err != nil {
		return nil, err
	}
	if len(cc.filters) > 0 {
		kept := rows[:0]
		if !owned {
			kept = rows[:0:0]
		}
		cancel := cancelCheck{ctx: ctx}
		rc := &rowCtx{parent: outer, depth: depth, qctx: ctx}
		for _, row := range rows {
			if err := cancel.poll(); err != nil {
				return nil, err
			}
			rc.row = row
			ok, err := truthyAll(cc.filters, rc)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, row)
			}
		}
		rows = kept
		if ex.trace != nil {
			ex.trace.addRows(cc.filterID, int64(len(rows)))
		}
	}
	var result *sqltypes.Relation
	if len(cc.groupBy) > 0 || cc.hasAgg {
		result, err = ex.projectGrouped(ctx, cc, rows, outer, depth)
	} else {
		result, err = ex.projectPlain(ctx, cc, rows, outer, depth)
	}
	if err == nil && ex.trace != nil {
		ex.trace.addRows(cc.id, int64(len(result.Rows)))
	}
	return result, err
}

// truthyAll reports whether every conjunct evaluates truthy (tri-state AND
// over a pre-split conjunct list, short-circuiting on the first non-truthy
// value, exactly like the legacy single-expression Kleene AND).
func truthyAll(filters []compiledExpr, ctx *rowCtx) (bool, error) {
	for _, fn := range filters {
		v, err := fn(ctx)
		if err != nil {
			return false, err
		}
		if !v.Truthy() {
			return false, nil
		}
	}
	return true, nil
}

// buildFrom produces the frame rows: the base scan (filtered by any
// pushed-down conjuncts) joined with each subsequent table. The returned
// flag reports whether the slice is owned by the caller (safe to filter in
// place) or shared with the storage layer.
func (ex *Executor) buildFrom(ctx context.Context, cc *compiledCore, outer *rowCtx, depth int) ([]sqltypes.Row, bool, error) {
	if len(cc.scans) == 0 {
		// SELECT without FROM evaluates items once over an empty row.
		return []sqltypes.Row{{}}, true, nil
	}
	rows, owned, err := cc.scans[0].rows(ctx, ex, outer, depth)
	if err != nil {
		return nil, false, err
	}
	if len(cc.baseFilters) > 0 {
		kept := rows[:0]
		if !owned {
			kept = rows[:0:0]
		}
		cancel := cancelCheck{ctx: ctx}
		rc := &rowCtx{parent: outer, depth: depth, qctx: ctx}
		for _, row := range rows {
			if err := cancel.poll(); err != nil {
				return nil, false, err
			}
			rc.row = row
			ok, err := truthyAll(cc.baseFilters, rc)
			if err != nil {
				return nil, false, err
			}
			if ok {
				kept = append(kept, row)
			}
		}
		rows, owned = kept, true
	}
	accW := cc.scans[0].width
	for i, jp := range cc.joins {
		next := cc.scans[i+1]
		right, _, err := next.rows(ctx, ex, outer, depth)
		if err != nil {
			return nil, false, err
		}
		rows, err = ex.execJoin(ctx, rows, accW, next, right, jp, outer, depth)
		if err != nil {
			return nil, false, err
		}
		accW += next.width
		owned = true
	}
	return rows, owned, nil
}

// execJoin combines the accumulated frame rows with one table. With a
// single equi key against a whole base table it probes the table's column
// index — the prebuilt equivalent of the hash table the generic path
// rebuilds per execution. With equi keys otherwise it runs a streaming
// hash join, building the hash table on the smaller side; without keys it
// falls back to a nested loop. All paths emit rows in identical order
// (left-major, right rows in scan order) and null-extend unmatched left
// rows inline for LEFT JOIN, matching rows by index — never by value — so
// duplicate-valued rows cannot collide.
func (ex *Executor) execJoin(ctx context.Context, acc []sqltypes.Row, accW int, next *tableScan, right []sqltypes.Row, jp *joinPlan, outer *rowCtx, depth int) (out []sqltypes.Row, err error) {
	outW := accW + next.width
	scratch := make(sqltypes.Row, outW)
	rc := &rowCtx{parent: outer, row: scratch, depth: depth, qctx: ctx}
	// One amortized cancellation counter covers every candidate pair
	// (through tryPair) and every build-side row, so even an n×m nested
	// loop observes cancellation within cancelCheckInterval pair visits.
	cancel := cancelCheck{ctx: ctx}
	var pairs int64
	if ex.trace != nil {
		defer func() {
			if err == nil {
				ex.trace.addRows(jp.id, int64(len(out)))
				ex.trace.addPairs(jp.id, pairs)
			}
		}()
	}

	emit := func() {
		combined := make(sqltypes.Row, outW)
		copy(combined, scratch)
		out = append(out, combined)
	}
	// tryPair evaluates the residual over scratch (left part already
	// filled) and emits on success.
	tryPair := func(rrow sqltypes.Row) (bool, error) {
		pairs++
		if err := cancel.poll(); err != nil {
			return false, err
		}
		copy(scratch[accW:], rrow)
		if len(jp.residual) > 0 {
			ok, err := truthyAll(jp.residual, rc)
			if err != nil || !ok {
				return false, err
			}
		}
		emit()
		return true, nil
	}
	nullExtend := func() {
		for i := accW; i < outW; i++ {
			scratch[i] = sqltypes.Null()
		}
		emit()
	}

	if len(jp.eqAcc) == 0 {
		// Nested loop: cross join, or arbitrary non-equi ON condition.
		for _, lrow := range acc {
			if err := cancel.poll(); err != nil {
				return nil, err
			}
			copy(scratch, lrow)
			matched := false
			for _, rrow := range right {
				ok, err := tryPair(rrow)
				if err != nil {
					return nil, err
				}
				matched = matched || ok
			}
			if jp.left && !matched {
				nullExtend()
			}
		}
		return out, nil
	}

	var buf []byte
	if !ex.NoIndexes && next.sub == nil && next.probe == nil && next.rprobe == nil {
		// The build side is a whole base table: reuse (or lazily build, once
		// per database) its column index — or, for multi-key joins, its
		// composite index over the exact key-column sequence — instead of
		// hashing the table again on every execution. Index buckets hold
		// row positions in scan order, so output order matches the generic
		// paths, and buckets and probe keys share the Compare-consistent
		// AppendCompareKey encoding the generic paths use, so the matched
		// pairs are bit-identical too.
		lookup := func() func([]byte) []int32 {
			if len(jp.eqNew) == 1 {
				return ex.db.Index(next.table, jp.eqNew[0]).Lookup
			}
			return ex.db.Composite(next.table, jp.eqNew).Lookup
		}()
		for _, lrow := range acc {
			if err := cancel.poll(); err != nil {
				return nil, err
			}
			copy(scratch, lrow)
			matched := false
			if key, ok := lrow.AppendCompareKeyCols(buf[:0], jp.eqAcc); ok {
				buf = key
				for _, ri := range lookup(key) {
					hit, err := tryPair(right[ri])
					if err != nil {
						return nil, err
					}
					matched = matched || hit
				}
			}
			if jp.left && !matched {
				nullExtend()
			}
		}
		return out, nil
	}
	if len(right) <= len(acc) {
		// Build on the right side; probe with left rows in order.
		ht := make(map[string][]int32, len(right))
		for ri, rrow := range right {
			if err := cancel.poll(); err != nil {
				return nil, err
			}
			key, ok := joinKey(buf[:0], rrow, jp.eqNew)
			if !ok {
				continue
			}
			buf = key
			ht[string(key)] = append(ht[string(key)], int32(ri))
		}
		for _, lrow := range acc {
			if err := cancel.poll(); err != nil {
				return nil, err
			}
			copy(scratch, lrow)
			matched := false
			if key, ok := joinKey(buf[:0], lrow, jp.eqAcc); ok {
				buf = key
				for _, ri := range ht[string(key)] {
					hit, err := tryPair(right[ri])
					if err != nil {
						return nil, err
					}
					matched = matched || hit
				}
			}
			if jp.left && !matched {
				nullExtend()
			}
		}
		return out, nil
	}

	// Build on the (smaller) left side; a per-left match list restores the
	// probe-left output order after scanning the right side once.
	ht := make(map[string][]int32, len(acc))
	for li, lrow := range acc {
		if err := cancel.poll(); err != nil {
			return nil, err
		}
		key, ok := joinKey(buf[:0], lrow, jp.eqAcc)
		if !ok {
			continue
		}
		buf = key
		ht[string(key)] = append(ht[string(key)], int32(li))
	}
	matches := make([][]int32, len(acc))
	for ri, rrow := range right {
		if err := cancel.poll(); err != nil {
			return nil, err
		}
		key, ok := joinKey(buf[:0], rrow, jp.eqNew)
		if !ok {
			continue
		}
		buf = key
		for _, li := range ht[string(key)] {
			matches[li] = append(matches[li], int32(ri))
		}
	}
	for li, lrow := range acc {
		if err := cancel.poll(); err != nil {
			return nil, err
		}
		copy(scratch, lrow)
		matched := false
		for _, ri := range matches[li] {
			hit, err := tryPair(right[ri])
			if err != nil {
				return nil, err
			}
			matched = matched || hit
		}
		if jp.left && !matched {
			nullExtend()
		}
	}
	return out, nil
}

// joinKey encodes the equi-key columns of a row into dst. A NULL in any
// key column reports ok=false: NULL never equi-matches anything. The
// Compare-consistent encoding (sqltypes.AppendCompareKey, shared with the
// secondary indexes) matches the = operator exactly, keeping the hash and
// index paths bit-identical to the nested-loop path.
func joinKey(dst []byte, row sqltypes.Row, idxs []int) ([]byte, bool) {
	return row.AppendCompareKeyCols(dst, idxs)
}
