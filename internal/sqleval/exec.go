// Package sqleval executes sqlast statements against a storage.Database.
// It implements the full Spider dialect: nested-loop joins (inner and
// left), tri-state WHERE logic, grouping with HAVING, the five SQL
// aggregates with DISTINCT, ordering, limits, set operations, and
// correlated subqueries (IN, EXISTS, scalar).
//
// The executor is deliberately a straightforward tuple-at-a-time
// interpreter: benchmark databases hold hundreds to thousands of rows, and
// the provenance tracker depends on the executor's simple, auditable
// semantics more than on throughput.
package sqleval

import (
	"fmt"
	"strings"

	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// Executor evaluates SELECT statements against one database.
type Executor struct {
	db *storage.Database
	// depth guards against pathological recursion from corrupted queries.
	depth int
}

// New returns an executor over db.
func New(db *storage.Database) *Executor { return &Executor{db: db} }

// maxSubqueryDepth bounds nesting; benchmark queries nest at most 3 deep.
const maxSubqueryDepth = 16

// Exec runs the statement and returns its result relation.
func (ex *Executor) Exec(stmt *sqlast.SelectStmt) (*sqltypes.Relation, error) {
	return ex.execStmt(stmt, nil)
}

// ExecSQL parses nothing; it is a convenience that runs an already-parsed
// statement and panics on nil. Kept separate so hot paths avoid re-parse.
func (ex *Executor) execStmt(stmt *sqlast.SelectStmt, outer *env) (*sqltypes.Relation, error) {
	if stmt == nil || len(stmt.Cores) == 0 {
		return nil, fmt.Errorf("sqleval: empty statement")
	}
	ex.depth++
	defer func() { ex.depth-- }()
	if ex.depth > maxSubqueryDepth {
		return nil, fmt.Errorf("sqleval: subquery nesting exceeds %d", maxSubqueryDepth)
	}
	result, err := ex.execCore(stmt.Cores[0], outer)
	if err != nil {
		return nil, err
	}
	for i, op := range stmt.Ops {
		rhs, err := ex.execCore(stmt.Cores[i+1], outer)
		if err != nil {
			return nil, err
		}
		result, err = combine(result, rhs, op)
		if err != nil {
			return nil, err
		}
	}
	return result, nil
}

func combine(l, r *sqltypes.Relation, op sqlast.CompoundOp) (*sqltypes.Relation, error) {
	if l.NumCols() != r.NumCols() {
		return nil, fmt.Errorf("sqleval: %s operands have %d vs %d columns", op, l.NumCols(), r.NumCols())
	}
	out := sqltypes.NewRelation(l.Columns...)
	switch op {
	case sqlast.UnionAll:
		out.Rows = append(append(out.Rows, l.Rows...), r.Rows...)
	case sqlast.Union:
		seen := map[string]bool{}
		for _, rows := range [][]sqltypes.Row{l.Rows, r.Rows} {
			for _, row := range rows {
				k := row.Key()
				if !seen[k] {
					seen[k] = true
					out.Append(row)
				}
			}
		}
	case sqlast.Intersect:
		inR := map[string]bool{}
		for _, row := range r.Rows {
			inR[row.Key()] = true
		}
		seen := map[string]bool{}
		for _, row := range l.Rows {
			k := row.Key()
			if inR[k] && !seen[k] {
				seen[k] = true
				out.Append(row)
			}
		}
	case sqlast.Except:
		inR := map[string]bool{}
		for _, row := range r.Rows {
			inR[row.Key()] = true
		}
		seen := map[string]bool{}
		for _, row := range l.Rows {
			k := row.Key()
			if !inR[k] && !seen[k] {
				seen[k] = true
				out.Append(row)
			}
		}
	default:
		return nil, fmt.Errorf("sqleval: unknown set operation %q", op)
	}
	return out, nil
}

// binding is one table's worth of columns inside a row environment.
type binding struct {
	name string // effective (alias or table) name, lower-case
	cols []string
	vals sqltypes.Row
}

// env is a row environment: the current joined row plus the enclosing
// query's environment for correlated subqueries.
type env struct {
	bindings []binding
	parent   *env
}

func (e *env) lookup(table, column string) (sqltypes.Value, bool) {
	tl, cl := strings.ToLower(table), strings.ToLower(column)
	for cur := e; cur != nil; cur = cur.parent {
		for bi := range cur.bindings {
			b := &cur.bindings[bi]
			if tl != "" && b.name != tl {
				continue
			}
			for ci, c := range b.cols {
				if c == cl {
					return b.vals[ci], true
				}
			}
		}
	}
	return sqltypes.Value{}, false
}

// frame is the working set of joined rows plus binding metadata.
type frame struct {
	bindings []bindingMeta
	rows     []sqltypes.Row // flattened: concatenation of all bindings' columns
	// pendingLeft holds the pre-join left rows between joinTable and
	// applyJoinCondition so LEFT JOIN can null-extend unmatched rows.
	pendingLeft []sqltypes.Row
}

type bindingMeta struct {
	name   string
	cols   []string
	offset int
	width  int
}

func (f *frame) env(row sqltypes.Row, parent *env) *env {
	e := &env{parent: parent}
	for _, b := range f.bindings {
		e.bindings = append(e.bindings, binding{name: b.name, cols: b.cols, vals: row[b.offset : b.offset+b.width]})
	}
	return e
}

func (ex *Executor) execCore(core *sqlast.SelectCore, outer *env) (*sqltypes.Relation, error) {
	f, err := ex.buildFrom(core, outer)
	if err != nil {
		return nil, err
	}
	// WHERE.
	if core.Where != nil {
		kept := f.rows[:0:0]
		for _, row := range f.rows {
			v, err := ex.eval(core.Where, f.env(row, outer), nil)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				kept = append(kept, row)
			}
		}
		f.rows = kept
	}
	if len(core.GroupBy) > 0 || core.HasAggregate() {
		return ex.projectGrouped(core, f, outer)
	}
	return ex.projectPlain(core, f, outer)
}

func (ex *Executor) buildFrom(core *sqlast.SelectCore, outer *env) (*frame, error) {
	f := &frame{}
	if core.From == nil {
		// SELECT without FROM evaluates items once over an empty env.
		f.rows = []sqltypes.Row{{}}
		return f, nil
	}
	if err := ex.joinTable(f, core.From.Base, outer, true, nil); err != nil {
		return nil, err
	}
	for _, j := range core.From.Joins {
		left := j.Type == sqlast.LeftJoin
		if err := ex.joinTable(f, j.Table, outer, false, nil); err != nil {
			return nil, err
		}
		if j.On != nil || left {
			if err := ex.applyJoinCondition(f, j.On, outer, left); err != nil {
				return nil, err
			}
		}
	}
	return f, nil
}

// joinTable cross-joins a table (or derived table) into the frame. The ON
// condition, when present, is applied by applyJoinCondition afterwards so
// LEFT JOIN can emit null-extended rows.
func (ex *Executor) joinTable(f *frame, ref sqlast.TableRef, outer *env, first bool, _ any) error {
	var cols []string
	var rows []sqltypes.Row
	if ref.Sub != nil {
		rel, err := ex.execStmt(ref.Sub, outer)
		if err != nil {
			return err
		}
		cols = make([]string, len(rel.Columns))
		for i, c := range rel.Columns {
			// Strip qualifiers so derived-table columns bind by bare name.
			if dot := strings.LastIndexByte(c, '.'); dot >= 0 {
				c = c[dot+1:]
			}
			cols[i] = strings.ToLower(c)
		}
		rows = rel.Rows
	} else {
		rel := ex.db.Table(ref.Name)
		if rel == nil {
			return fmt.Errorf("sqleval: unknown table %q", ref.Name)
		}
		cols = make([]string, len(rel.Columns))
		for i, c := range rel.Columns {
			cols[i] = strings.ToLower(c)
		}
		rows = rel.Rows
	}
	name := strings.ToLower(ref.Effective())
	meta := bindingMeta{name: name, cols: cols, width: len(cols)}
	if first {
		f.bindings = []bindingMeta{meta}
		f.rows = make([]sqltypes.Row, len(rows))
		for i, r := range rows {
			f.rows[i] = r.Clone()
		}
		return nil
	}
	meta.offset = f.width()
	f.bindings = append(f.bindings, meta)
	var joined []sqltypes.Row
	for _, lrow := range f.rows {
		for _, rrow := range rows {
			combined := make(sqltypes.Row, 0, len(lrow)+len(rrow))
			combined = append(append(combined, lrow...), rrow...)
			joined = append(joined, combined)
		}
	}
	// Preserve left rows with no right partner for later LEFT JOIN fixup:
	// handled in applyJoinCondition via the bookkeeping below.
	f.pendingLeft = f.rows
	f.rows = joined
	return nil
}

func (f *frame) width() int {
	n := 0
	for _, b := range f.bindings {
		n += b.width
	}
	return n
}

// pendingLeft holds the pre-join left rows for LEFT JOIN null extension.
// It lives on frame to avoid threading an extra return value.
func (ex *Executor) applyJoinCondition(f *frame, on sqlast.Expr, outer *env, left bool) error {
	last := f.bindings[len(f.bindings)-1]
	matched := make(map[string]bool)
	var kept []sqltypes.Row
	for _, row := range f.rows {
		ok := true
		if on != nil {
			v, err := ex.eval(on, f.env(row, outer), nil)
			if err != nil {
				return err
			}
			ok = v.Truthy()
		}
		if ok {
			kept = append(kept, row)
			if left {
				matched[row[:last.offset].Key()] = true
			}
		}
	}
	if left {
		for _, lrow := range f.pendingLeft {
			if !matched[lrow.Key()] {
				extended := make(sqltypes.Row, last.offset+last.width)
				copy(extended, lrow)
				kept = append(kept, extended) // trailing values are NULL
			}
		}
	}
	f.rows = kept
	f.pendingLeft = nil
	return nil
}
