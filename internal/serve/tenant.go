package serve

import (
	"strings"
	"sync"
	"sync/atomic"

	"cyclesql/internal/core"
	"cyclesql/internal/datasets"
	"cyclesql/internal/nl2sql"
	"cyclesql/internal/storage"
)

// maxWarmPipelines bounds the per-tenant warm pipeline cache; at the
// limit an arbitrary entry is evicted, mirroring core's bounded executor
// cache. The keyspace is (model, beam), so the bound is generous for the
// five simulated models.
const maxWarmPipelines = 8

// tenant is the per-tenant serving state: the live store, the current
// pinned snapshot, the tenant's question book (the simulated models
// translate benchmark questions), and warm pipelines per (model, beam).
type tenant struct {
	name string
	live *storage.Database
	// examples maps the lower-cased question text to its benchmark
	// example; built once at startup, read-only afterwards.
	examples map[string]*datasets.Example

	// snap is the tenant's current snapshot; refreshed under mu when the
	// live store's epoch has moved past it. Reads are lock-free.
	mu   sync.Mutex
	snap atomic.Pointer[storage.Snapshot]

	pmu       sync.Mutex
	pipelines map[pipeKey]*core.Pipeline
}

type pipeKey struct {
	model string
	beam  int
}

// newTenant indexes one benchmark database and its dev questions.
func newTenant(name string, db *storage.Database, dev []datasets.Example) *tenant {
	t := &tenant{
		name:      name,
		live:      db,
		examples:  make(map[string]*datasets.Example),
		pipelines: make(map[pipeKey]*core.Pipeline, maxWarmPipelines),
	}
	for i := range dev {
		if dev[i].DBName == name {
			t.examples[strings.ToLower(dev[i].Question)] = &dev[i]
		}
	}
	return t
}

// example resolves a question against the tenant's book, or nil.
func (t *tenant) example(question string) *datasets.Example {
	return t.examples[strings.ToLower(strings.TrimSpace(question))]
}

// snapshot returns the tenant's current snapshot, re-pinning only when
// the live store's epoch has moved (a write happened since the last
// pin). The fast path is two atomic loads plus the store's epoch read;
// the refresh double-checks under the tenant lock so a burst of requests
// after one write pays for a single O(tables) pin.
func (t *tenant) snapshot(m *Metrics) *storage.Snapshot {
	m.snapPins.Add(1)
	if s := t.snap.Load(); s != nil && s.Epoch() == t.live.Epoch() {
		return s
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.snap.Load(); s != nil && s.Epoch() == t.live.Epoch() {
		return s
	}
	s := t.live.Snapshot()
	t.snap.Store(s)
	m.snapRefreshes.Add(1)
	return s
}

// pipeline returns the tenant's warm pipeline for (model, beam),
// assembling one through experiments.Limits.Pipeline — the same path the
// CLIs and drivers use — on first sight. Pipelines are safe for
// concurrent Translate calls, so one instance serves all in-flight
// requests for the key.
func (t *tenant) pipeline(s *Server, modelName string, beam int) (*core.Pipeline, error) {
	key := pipeKey{model: modelName, beam: beam}
	t.pmu.Lock()
	defer t.pmu.Unlock()
	if p, ok := t.pipelines[key]; ok {
		s.metrics.pipeHits.Add(1)
		return p, nil
	}
	model, err := nl2sql.ByName(modelName)
	if err != nil {
		return nil, err
	}
	s.metrics.pipeMisses.Add(1)
	if len(t.pipelines) >= maxWarmPipelines {
		for k := range t.pipelines {
			delete(t.pipelines, k)
			break
		}
	}
	p := s.cfg.Limits.Pipeline(model, s.cfg.Verifier, s.cfg.Bench.Name, nil)
	p.BeamSize = beam
	t.pipelines[key] = p
	return p, nil
}
