package serve

import (
	"sync/atomic"
	"time"

	"cyclesql/internal/resilience"
)

// latencyBucketMillis are the upper bounds of the translate-latency
// histogram, in milliseconds; observations above the last bound land in
// the overflow bucket. The spread covers the warm in-process loop
// (sub-millisecond) through simulated-inference latencies and queued
// requests near the deadline.
var latencyBucketMillis = [numLatencyBuckets]float64{1, 5, 25, 100, 500, 2500}

const numLatencyBuckets = 6

// Metrics is the server's counter set, exposed as JSON on GET /metrics.
// All fields are atomics so the hot path never takes a lock.
type Metrics struct {
	start time.Time

	// Terminal request outcomes, by class. total counts every request the
	// mux routed to a handler, including health and metrics probes' own
	// translate siblings — i.e. only translate requests.
	total         atomic.Int64
	ok            atomic.Int64
	badRequest    atomic.Int64
	unknownTenant atomic.Int64
	shed          atomic.Int64 // admission control said 429
	deadline      atomic.Int64 // request budget expired (504)
	canceled      atomic.Int64 // client went away mid-flight
	internal      atomic.Int64

	// Gauges: requests holding an execution slot / waiting for one.
	inflight atomic.Int64
	queued   atomic.Int64

	// Admitted-request latency histogram (see latencyBucketMillis) plus
	// overflow and the high-water mark.
	latency     [numLatencyBuckets]atomic.Int64
	latencyOver atomic.Int64
	latencyMax  atomic.Int64 // microseconds

	// Snapshot pin accounting: pins counts every request that resolved a
	// tenant snapshot, refreshes the subset that had to re-pin because the
	// live store's epoch had moved. hit rate = 1 - refreshes/pins.
	snapPins      atomic.Int64
	snapRefreshes atomic.Int64

	// Warm-pipeline cache accounting per (model, beam) lookup.
	pipeHits   atomic.Int64
	pipeMisses atomic.Int64
}

// observe records one admitted request's wall-clock latency.
func (m *Metrics) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	placed := false
	for i, le := range latencyBucketMillis {
		if ms <= le {
			m.latency[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		m.latencyOver.Add(1)
	}
	us := d.Microseconds()
	for {
		cur := m.latencyMax.Load()
		if us <= cur || m.latencyMax.CompareAndSwap(cur, us) {
			return
		}
	}
}

// LatencyBucket is one histogram bucket: the count of admitted requests
// that completed within LEMillis milliseconds (non-cumulative).
type LatencyBucket struct {
	LEMillis float64 `json:"le_ms"`
	Count    int64   `json:"count"`
}

// MetricsView is the GET /metrics response body.
type MetricsView struct {
	UptimeMillis int64 `json:"uptime_ms"`
	Requests     struct {
		Total            int64 `json:"total"`
		OK               int64 `json:"ok"`
		BadRequest       int64 `json:"bad_request"`
		UnknownTenant    int64 `json:"unknown_tenant"`
		Shed             int64 `json:"shed"`
		DeadlineExceeded int64 `json:"deadline_exceeded"`
		Canceled         int64 `json:"canceled"`
		Internal         int64 `json:"internal"`
	} `json:"requests"`
	Inflight int64 `json:"inflight"`
	Queued   int64 `json:"queued"`
	Latency  struct {
		Buckets   []LatencyBucket `json:"buckets"`
		Overflow  int64           `json:"overflow"`
		MaxMicros int64           `json:"max_us"`
	} `json:"latency"`
	Snapshots struct {
		Pins      int64   `json:"pins"`
		Refreshes int64   `json:"refreshes"`
		HitRate   float64 `json:"hit_rate"`
	} `json:"snapshots"`
	Pipelines struct {
		Hits    int64   `json:"hits"`
		Misses  int64   `json:"misses"`
		HitRate float64 `json:"hit_rate"`
	} `json:"pipelines"`
	Resilience struct {
		Attempts        int64 `json:"attempts"`
		Retries         int64 `json:"retries"`
		BreakerTrips    int64 `json:"breaker_trips"`
		Degraded        int64 `json:"degraded"`
		PanicsRecovered int64 `json:"panics_recovered"`
	} `json:"resilience"`
}

// view snapshots the counters into the JSON shape, folding in the
// resilience policy's stats (all zero when no policy is armed).
func (m *Metrics) view(stats resilience.Stats) MetricsView {
	var v MetricsView
	v.UptimeMillis = time.Since(m.start).Milliseconds()
	v.Requests.Total = m.total.Load()
	v.Requests.OK = m.ok.Load()
	v.Requests.BadRequest = m.badRequest.Load()
	v.Requests.UnknownTenant = m.unknownTenant.Load()
	v.Requests.Shed = m.shed.Load()
	v.Requests.DeadlineExceeded = m.deadline.Load()
	v.Requests.Canceled = m.canceled.Load()
	v.Requests.Internal = m.internal.Load()
	v.Inflight = m.inflight.Load()
	v.Queued = m.queued.Load()
	v.Latency.Buckets = make([]LatencyBucket, len(latencyBucketMillis))
	for i, le := range latencyBucketMillis {
		v.Latency.Buckets[i] = LatencyBucket{LEMillis: le, Count: m.latency[i].Load()}
	}
	v.Latency.Overflow = m.latencyOver.Load()
	v.Latency.MaxMicros = m.latencyMax.Load()
	v.Snapshots.Pins = m.snapPins.Load()
	v.Snapshots.Refreshes = m.snapRefreshes.Load()
	if v.Snapshots.Pins > 0 {
		v.Snapshots.HitRate = 1 - float64(v.Snapshots.Refreshes)/float64(v.Snapshots.Pins)
	}
	v.Pipelines.Hits = m.pipeHits.Load()
	v.Pipelines.Misses = m.pipeMisses.Load()
	if lookups := v.Pipelines.Hits + v.Pipelines.Misses; lookups > 0 {
		v.Pipelines.HitRate = float64(v.Pipelines.Hits) / float64(lookups)
	}
	v.Resilience.Attempts = stats.Attempts
	v.Resilience.Retries = stats.Retries
	v.Resilience.BreakerTrips = stats.BreakerTrips
	v.Resilience.Degraded = stats.Degraded
	v.Resilience.PanicsRecovered = stats.PanicsRecovered
	return v
}
