package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cyclesql/internal/datasets"
	"cyclesql/internal/experiments"
	"cyclesql/internal/nl2sql"
	"cyclesql/internal/nli"
	"cyclesql/internal/storage"
)

var update = flag.Bool("update", false, "rewrite the golden fixtures")

// accept is the zero-cost verifier the protocol tests use; the parity
// test uses the real trained verifier instead.
var accept = nli.Func{Label: "accept", Fn: func(string, nli.Premise) bool { return true }}

// isolatedBench clones one Spider database into a fresh single-tenant
// benchmark, so tests that write (or that assert on snapshot epochs)
// cannot disturb — or be disturbed by — the process-wide memoized
// benchmark.
func isolatedBench(t testing.TB, dbName string) *datasets.Benchmark {
	t.Helper()
	src := datasets.Spider()
	b := &datasets.Benchmark{
		Name:      src.Name,
		Databases: map[string]*storage.Database{dbName: src.DB(dbName).Clone()},
	}
	for _, ex := range src.Dev {
		if ex.DBName == dbName {
			b.Dev = append(b.Dev, ex)
		}
	}
	if len(b.Dev) == 0 {
		t.Fatalf("no dev examples for %s", dbName)
	}
	return b
}

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	if cfg.Bench == nil {
		cfg.Bench = isolatedBench(t, "world_1")
	}
	if cfg.Verifier == nil {
		cfg.Verifier = accept
	}
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// volatile strips response fields that legitimately vary run to run so
// the rest of the body can be compared against a golden fixture byte for
// byte.
var volatile = regexp.MustCompile(`"(overhead_us|uptime_ms)": \d+`)

func checkGolden(t *testing.T, name string, status, wantStatus int, body []byte) {
	t.Helper()
	if status != wantStatus {
		t.Fatalf("%s: status = %d, want %d\nbody: %s", name, status, wantStatus, body)
	}
	got := volatile.ReplaceAll(body, []byte(`"$1": 0`))
	path := filepath.Join("testdata", name+".golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden fixture:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenProtocol locks the wire format: one fixture per terminal
// status the API can answer.
func TestGoldenProtocol(t *testing.T) {
	bench := isolatedBench(t, "world_1")
	q := "How many countries are in Africa?"

	t.Run("translate_ok", func(t *testing.T) {
		ts := newTestServer(t, Config{Bench: bench})
		status, hdr, body := post(t, ts, "/v1/world_1/translate",
			fmt.Sprintf(`{"question": %q}`, q))
		if ct := hdr.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Content-Type = %q", ct)
		}
		checkGolden(t, "translate_ok", status, 200, body)
	})
	t.Run("bad_request", func(t *testing.T) {
		ts := newTestServer(t, Config{Bench: bench})
		status, _, body := post(t, ts, "/v1/world_1/translate", `{"question": 42}`)
		checkGolden(t, "bad_request", status, 400, body)
	})
	t.Run("unknown_tenant", func(t *testing.T) {
		ts := newTestServer(t, Config{Bench: bench})
		status, _, body := post(t, ts, "/v1/nope/translate", fmt.Sprintf(`{"question": %q}`, q))
		checkGolden(t, "unknown_tenant", status, 404, body)
	})
	t.Run("overloaded", func(t *testing.T) {
		// One slot, one queue seat, a verifier slow enough to hold them:
		// the third concurrent request must shed.
		ts := newTestServer(t, Config{
			Bench:       bench,
			Verifier:    nli.Latency{V: accept, D: 300 * time.Millisecond},
			MaxInflight: 1,
			MaxQueue:    1,
		})
		results := make(chan int, 3)
		var shedBody []byte
		var shedHdr http.Header
		var mu sync.Mutex
		var wg sync.WaitGroup
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				status, hdr, body := post(t, ts, "/v1/world_1/translate",
					fmt.Sprintf(`{"question": %q}`, q))
				if status == 429 {
					mu.Lock()
					shedBody, shedHdr = body, hdr
					mu.Unlock()
				}
				results <- status
			}()
			time.Sleep(50 * time.Millisecond) // deterministic arrival order
		}
		wg.Wait()
		close(results)
		counts := map[int]int{}
		for st := range results {
			counts[st]++
		}
		if counts[200] != 2 || counts[429] != 1 {
			t.Fatalf("status counts = %v, want 2x200 + 1x429", counts)
		}
		if ra := shedHdr.Get("Retry-After"); ra == "" {
			t.Fatal("429 must carry Retry-After")
		}
		checkGolden(t, "overloaded", 429, 429, shedBody)
	})
	t.Run("deadline", func(t *testing.T) {
		ts := newTestServer(t, Config{
			Bench:    bench,
			Verifier: nli.Latency{V: accept, D: time.Second},
		})
		status, _, body := post(t, ts, "/v1/world_1/translate",
			fmt.Sprintf(`{"question": %q, "timeout_ms": 50}`, q))
		checkGolden(t, "deadline", status, 504, body)
	})
}

func TestUnknownQuestionAndModel(t *testing.T) {
	ts := newTestServer(t, Config{})
	status, _, body := post(t, ts, "/v1/world_1/translate", `{"question": "what is the meaning of life?"}`)
	if status != 400 || !strings.Contains(string(body), "benchmark book") {
		t.Fatalf("unknown question: %d %s", status, body)
	}
	status, _, body = post(t, ts, "/v1/world_1/translate", `{"question": "x", "model": "gpt-9"}`)
	if status != 400 || !strings.Contains(string(body), "unknown model") {
		t.Fatalf("unknown model: %d %s", status, body)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	bench := isolatedBench(t, "world_1")
	ts := newTestServer(t, Config{Bench: bench})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status  string `json:"status"`
		Tenants int    `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || health.Status != "ok" || health.Tenants != 1 {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, health)
	}

	// Two warm requests: the second must reuse both the snapshot pin and
	// the warm pipeline, and the histogram must hold both observations.
	q := bench.Dev[0].Question
	for i := 0; i < 2; i++ {
		if status, _, body := post(t, ts, "/v1/world_1/translate", fmt.Sprintf(`{"question": %q}`, q)); status != 200 {
			t.Fatalf("warmup %d: %d %s", i, status, body)
		}
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mv MetricsView
	if err := json.NewDecoder(resp.Body).Decode(&mv); err != nil {
		t.Fatal(err)
	}
	if mv.Requests.Total != 2 || mv.Requests.OK != 2 {
		t.Fatalf("requests = %+v", mv.Requests)
	}
	if mv.Snapshots.Pins != 2 || mv.Snapshots.Refreshes != 1 {
		t.Fatalf("snapshots = %+v (second request must reuse the pin)", mv.Snapshots)
	}
	if mv.Pipelines.Hits != 1 || mv.Pipelines.Misses != 1 {
		t.Fatalf("pipelines = %+v", mv.Pipelines)
	}
	var observed int64
	for _, b := range mv.Latency.Buckets {
		observed += b.Count
	}
	if observed+mv.Latency.Overflow != 2 {
		t.Fatalf("latency histogram holds %d+%d observations, want 2", observed, mv.Latency.Overflow)
	}
	if mv.Inflight != 0 || mv.Queued != 0 {
		t.Fatalf("gauges not drained: inflight=%d queued=%d", mv.Inflight, mv.Queued)
	}
}

// TestHTTPDirectParity drives every dev question (capped at 200) through
// the HTTP layer and through Pipeline.Translate directly, with the real
// trained verifier, and requires bit-identical verdicts — the serving
// layer must add transport, not behavior.
func TestHTTPDirectParity(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the full verifier")
	}
	bench := datasets.Spider()
	lim := experiments.DefaultLimits
	verifier := experiments.Verifier(lim)
	ts := newTestServer(t, Config{Bench: bench, Verifier: verifier, Limits: lim})

	dev := bench.Dev
	if len(dev) > 200 {
		dev = dev[:200]
	}
	// The direct run shares nothing with the server but the verifier and
	// the immutable benchmark.
	p := lim.Pipeline(nl2sql.MustByName("resdsql-3b"), verifier, bench.Name, nil)
	p.BeamSize = 8
	for i, ex := range dev {
		status, _, body := post(t, ts, "/v1/"+ex.DBName+"/translate",
			fmt.Sprintf(`{"question": %q}`, ex.Question))
		if status != 200 {
			t.Fatalf("dev[%d] %s: %d %s", i, ex.Question, status, body)
		}
		var got TranslateResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		res, err := p.Translate(t.Context(), ex, bench.DB(ex.DBName))
		if err != nil {
			t.Fatalf("direct dev[%d]: %v", i, err)
		}
		if got.SQL != res.FinalSQL || got.Verified != res.Verified ||
			got.Iterations != res.Iterations || got.Degraded != res.Degraded {
			t.Fatalf("dev[%d] %q parity broken:\n  http   %q verified=%v iter=%d\n  direct %q verified=%v iter=%d",
				i, ex.Question, got.SQL, got.Verified, got.Iterations,
				res.FinalSQL, res.Verified, res.Iterations)
		}
	}
}

// TestSnapshotIsolationUnderLoad floods the server while writers churn
// the live store; run with -race. Every request must answer 200 (reads
// are never torn by the copy-on-write swaps) and the snapshot hit rate
// must stay below 1 (writes really did force re-pins).
func TestSnapshotIsolationUnderLoad(t *testing.T) {
	bench := isolatedBench(t, "world_1")
	db := bench.DB("world_1")
	srv := New(Config{Bench: bench, Verifier: accept, MaxInflight: 8, MaxQueue: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Seed row to re-insert: read it before any writer starts.
	rel := db.Table("country")
	if rel == nil || len(rel.Rows) == 0 {
		t.Fatal("world_1 has no country rows")
	}
	seed := rel.Rows[0].Clone()

	stop := make(chan struct{})
	var writerErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := db.Insert("country", seed.Clone()); err != nil {
					writerErr.Store(err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}

	q := bench.Dev[0].Question
	var reqWG sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		reqWG.Add(1)
		go func() {
			defer reqWG.Done()
			for i := 0; i < 8; i++ {
				status, _, body := post(t, ts, "/v1/world_1/translate",
					fmt.Sprintf(`{"question": %q}`, q))
				if status != 200 {
					errs <- fmt.Sprintf("status %d: %s", status, body)
					return
				}
			}
		}()
	}
	reqWG.Wait()
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if err := writerErr.Load(); err != nil {
		t.Fatalf("writer: %v", err)
	}
	pins, refreshes := srv.metrics.snapPins.Load(), srv.metrics.snapRefreshes.Load()
	if pins != 64 {
		t.Fatalf("pins = %d, want 64", pins)
	}
	if refreshes < 2 {
		t.Fatalf("refreshes = %d; concurrent writers must have moved the epoch", refreshes)
	}
}

// TestClientDisconnectAbortsWork cancels a request mid-flight and
// checks the slot drains and the cancel is accounted.
func TestClientDisconnectAbortsWork(t *testing.T) {
	bench := isolatedBench(t, "world_1")
	srv := New(Config{
		Bench:    bench,
		Verifier: nli.Latency{V: accept, D: 5 * time.Second},
		Timeout:  time.Minute,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, err := http.NewRequest("POST", ts.URL+"/v1/world_1/translate",
		strings.NewReader(fmt.Sprintf(`{"question": %q}`, bench.Dev[0].Question)))
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 200 * time.Millisecond}
	if _, err := client.Do(req); err == nil {
		t.Fatal("expected client-side timeout")
	}
	// The handler observes the disconnect through the request context;
	// give it a moment to unwind, then the slot must be free.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.metrics.inflight.Load() == 0 && srv.metrics.canceled.Load() == 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("disconnect not drained: inflight=%d canceled=%d",
		srv.metrics.inflight.Load(), srv.metrics.canceled.Load())
}

// TestTranslateExplain exercises the explain field: a request with
// "explain": true answers with the final SQL's rendered plan tree —
// access paths with estimated and actual row counts, planned against the
// request's pinned snapshot — while requests without it omit the field.
func TestTranslateExplain(t *testing.T) {
	bench := isolatedBench(t, "world_1")
	ts := newTestServer(t, Config{Bench: bench})
	q := "How many countries are in Africa?"

	status, _, body := post(t, ts, "/v1/world_1/translate",
		fmt.Sprintf(`{"question": %q, "explain": true}`, q))
	if status != 200 {
		t.Fatalf("status = %d: %s", status, body)
	}
	var got TranslateResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Plan == "" {
		t.Fatalf("explain request answered without a plan: %s", body)
	}
	if !strings.Contains(got.Plan, "est=") || !strings.Contains(got.Plan, "act=") {
		t.Fatalf("plan lacks estimate/actual annotations:\n%s", got.Plan)
	}

	status, _, body = post(t, ts, "/v1/world_1/translate",
		fmt.Sprintf(`{"question": %q}`, q))
	if status != 200 {
		t.Fatalf("status = %d: %s", status, body)
	}
	if bytes.Contains(body, []byte(`"plan"`)) {
		t.Fatalf("plan field must be omitted when not requested: %s", body)
	}
}
