package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cyclesql/internal/nli"
)

// verifyLatency is the simulated verifier inference cost for the QPS
// benchmarks: high enough that capacity is admission-bound (not
// loop-overhead-bound), low enough that a bench run stays short.
const verifyLatency = 2 * time.Millisecond

// BenchmarkServeSustainedQPS measures sustained throughput and shed rate
// at several admission limits under 2x overload: capacity is MaxInflight
// running + MaxQueue (=MaxInflight) queued, and twice that many clients
// hammer the server with no think time. Reported per sub-benchmark:
//
//	qps       — successful (200) translations per second
//	shed/req  — fraction of requests answered 429
//
// BENCH_PR7.json records the protocol and reference numbers.
func BenchmarkServeSustainedQPS(b *testing.B) {
	for _, inflight := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("inflight=%d", inflight), func(b *testing.B) {
			bench := isolatedBench(b, "world_1")
			srv := New(Config{
				Bench:       bench,
				Verifier:    nli.Latency{V: accept, D: verifyLatency},
				MaxInflight: inflight,
				MaxQueue:    inflight,
			})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			body := fmt.Sprintf(`{"question": %q}`, bench.Dev[0].Question)
			clients := 4 * inflight // 2x the inflight+queue capacity

			var issued atomic.Int64
			var ok, shed, other atomic.Int64
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					client := &http.Client{}
					for issued.Add(1) <= int64(b.N) {
						resp, err := client.Post(ts.URL+"/v1/world_1/translate", "application/json", strings.NewReader(body))
						if err != nil {
							other.Add(1)
							continue
						}
						io.Copy(io.Discard, resp.Body) //nolint:errcheck
						resp.Body.Close()
						switch resp.StatusCode {
						case http.StatusOK:
							ok.Add(1)
						case http.StatusTooManyRequests:
							shed.Add(1)
						default:
							other.Add(1)
						}
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			if other.Load() > 0 {
				b.Fatalf("%d requests answered neither 200 nor 429", other.Load())
			}
			total := ok.Load() + shed.Load()
			b.ReportMetric(float64(ok.Load())/elapsed.Seconds(), "qps")
			b.ReportMetric(float64(shed.Load())/float64(total), "shed/req")
		})
	}
}

// BenchmarkServeTranslateLatency is the single-client request cost
// through the full HTTP stack (admission, snapshot pin, warm pipeline,
// JSON) with a free verifier — the transport overhead floor.
func BenchmarkServeTranslateLatency(b *testing.B) {
	bench := isolatedBench(b, "world_1")
	srv := New(Config{Bench: bench, Verifier: accept})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := fmt.Sprintf(`{"question": %q}`, bench.Dev[0].Question)
	client := &http.Client{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/v1/world_1/translate", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
