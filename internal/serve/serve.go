// Package serve is the pipeline-as-a-service layer: a multi-tenant
// HTTP/JSON front end over the CycleSQL feedback loop. Each tenant is
// one benchmark database; a request pins the tenant's copy-on-write
// snapshot (O(tables), see internal/storage), runs the loop on a warm
// per-tenant pipeline, and answers with the verified translation.
//
// Endpoints:
//
//	POST /v1/{tenant}/translate  — run the feedback loop on a question
//	GET  /healthz                — liveness probe
//	GET  /metrics                — JSON counters (see MetricsView)
//
// Admission control is two-stage: up to MaxInflight requests execute
// concurrently, up to MaxQueue more wait for a slot, and everything past
// that is shed immediately with 429 and a Retry-After header — the
// server stays responsive under overload instead of queueing without
// bound. Request deadlines ride the context: the per-request budget
// (Timeout, optionally shortened per request) cancels in-flight loop
// work, and a client disconnect does the same through the request
// context, so abandoned work stops consuming slots.
//
// Configuration comes from the same cliconf surface the CLIs use, so a
// flag that tunes the batch harness tunes the server identically.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"cyclesql/internal/datasets"
	"cyclesql/internal/experiments"
	"cyclesql/internal/nl2sql"
	"cyclesql/internal/nli"
	"cyclesql/internal/sqleval"
	"cyclesql/internal/sqlparse"
	"cyclesql/internal/storage"
)

// Config assembles a Server. Bench and Verifier are required; zero
// values elsewhere pick the documented defaults.
type Config struct {
	// Bench supplies the tenants: every database becomes one tenant,
	// addressable as /v1/{name}/..., with the dev split as its question
	// book (the simulated models translate benchmark questions).
	Bench *datasets.Benchmark
	// Verifier is shared across all tenants and pipelines; wrap it in
	// nli.Latency to simulate inference cost.
	Verifier nli.Verifier
	// Limits carries parallelism, resilience and chaos exactly as the
	// CLIs configure them (cliconf.Build().Limits).
	Limits experiments.Limits
	// DefaultModel answers requests that name no model (default
	// "resdsql-3b"); Beam is the default beam size (default 8).
	DefaultModel string
	Beam         int
	// MaxInflight bounds concurrently executing translations (default 8);
	// MaxQueue bounds requests waiting for a slot (default 2*MaxInflight).
	// Beyond both, requests are shed with 429.
	MaxInflight int
	MaxQueue    int
	// Timeout is the per-request wall-clock budget (default 30s). A
	// request's timeout_ms can shorten it, never extend it.
	Timeout time.Duration
}

// Server routes tenants, admits requests and runs the loop. Create with
// New; serve via Handler.
type Server struct {
	cfg Config
	//vetcycle:allow boundedcache -- populated once in New, read-only afterwards; per-tenant mutable state lives behind tenant's own mutexes
	tenants map[string]*tenant
	slots   chan struct{}
	queue   chan struct{}
	metrics Metrics
	mux     *http.ServeMux
}

// New builds a Server over the benchmark's databases. Defaults: model
// resdsql-3b, beam 8, 8 in-flight, 16 queued, 30s budget.
func New(cfg Config) *Server {
	if cfg.DefaultModel == "" {
		cfg.DefaultModel = "resdsql-3b"
	}
	if cfg.Beam <= 0 {
		cfg.Beam = 8
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 8
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 2 * cfg.MaxInflight
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	s := &Server{
		cfg:     cfg,
		tenants: make(map[string]*tenant, len(cfg.Bench.Databases)),
		slots:   make(chan struct{}, cfg.MaxInflight),
		queue:   make(chan struct{}, cfg.MaxQueue),
		mux:     http.NewServeMux(),
	}
	s.metrics.start = time.Now()
	for name, db := range cfg.Bench.Databases {
		s.tenants[name] = newTenant(name, db, cfg.Bench.Dev)
	}
	s.mux.HandleFunc("POST /v1/{tenant}/translate", s.handleTranslate)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// TranslateRequest is the POST /v1/{tenant}/translate body.
type TranslateRequest struct {
	// Question must be one of the tenant's benchmark questions (the
	// simulated models translate the benchmark).
	Question string `json:"question"`
	// Model optionally overrides the server's default model.
	Model string `json:"model,omitempty"`
	// Beam optionally overrides the server's default beam size.
	Beam int `json:"beam,omitempty"`
	// TimeoutMillis optionally shortens the server's request budget.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// Explain requests the EXPLAIN plan tree of the final SQL — the access
	// paths and join strategies the cost-based planner chose against this
	// request's snapshot, with estimated and actual row counts per operator.
	Explain bool `json:"explain,omitempty"`
}

// TranslateResponse is the success body: the loop's verdict plus the
// snapshot epoch the request executed against.
type TranslateResponse struct {
	Tenant         string `json:"tenant"`
	Model          string `json:"model"`
	SQL            string `json:"sql"`
	Verified       bool   `json:"verified"`
	Degraded       bool   `json:"degraded,omitempty"`
	Iterations     int    `json:"iterations"`
	Retries        int    `json:"retries,omitempty"`
	Candidates     int    `json:"candidates"`
	SnapshotEpoch  uint64 `json:"snapshot_epoch"`
	OverheadMicros int64  `json:"overhead_us"`
	// Plan is the rendered EXPLAIN plan tree of the final SQL, present only
	// when the request set "explain": true and the final SQL re-planned
	// cleanly (plan failures never fail a translation that succeeded).
	Plan string `json:"plan,omitempty"`
}

// ErrorResponse is the envelope every non-2xx response carries.
type ErrorResponse struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail names the failure: a stable machine-readable code and a
// human-readable message.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Stable error codes.
const (
	CodeBadRequest    = "bad_request"
	CodeUnknownTenant = "unknown_tenant"
	CodeOverloaded    = "overloaded"
	CodeDeadline      = "deadline_exceeded"
	CodeInternal      = "internal"
)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // a failed write means the client is gone
}

func (s *Server) fail(w http.ResponseWriter, status int, code, msg string) {
	switch code {
	case CodeBadRequest:
		s.metrics.badRequest.Add(1)
	case CodeUnknownTenant:
		s.metrics.unknownTenant.Add(1)
	case CodeOverloaded:
		s.metrics.shed.Add(1)
	case CodeDeadline:
		s.metrics.deadline.Add(1)
	case CodeInternal:
		s.metrics.internal.Add(1)
	}
	writeJSON(w, status, ErrorResponse{Error: ErrorDetail{Code: code, Message: msg}})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"tenants":   len(s.tenants),
		"uptime_ms": time.Since(s.metrics.start).Milliseconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.view(s.cfg.Limits.Resilience.Stats()))
}

// admit acquires an execution slot, waiting in the bounded queue if the
// slot pool is full. It returns a release func on success, or a nil
// release with shed=true when both the pool and the queue are full. A
// context cancelled while queued returns (nil, false) — the caller maps
// ctx.Err() to 504 or a silent disconnect.
func (s *Server) admit(ctx context.Context) (release func(), shed bool) {
	grant := func() func() {
		s.metrics.inflight.Add(1)
		return func() {
			s.metrics.inflight.Add(-1)
			<-s.slots
		}
	}
	select {
	case s.slots <- struct{}{}:
		return grant(), false
	default:
	}
	select {
	case s.queue <- struct{}{}:
	default:
		return nil, true
	}
	s.metrics.queued.Add(1)
	defer func() {
		s.metrics.queued.Add(-1)
		<-s.queue
	}()
	select {
	case s.slots <- struct{}{}:
		return grant(), false
	case <-ctx.Done():
		return nil, false
	}
}

func (s *Server) handleTranslate(w http.ResponseWriter, r *http.Request) {
	s.metrics.total.Add(1)
	t, ok := s.tenants[r.PathValue("tenant")]
	if !ok {
		s.fail(w, http.StatusNotFound, CodeUnknownTenant,
			fmt.Sprintf("unknown tenant %q", r.PathValue("tenant")))
		return
	}
	var req TranslateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, CodeBadRequest, "invalid request body: "+err.Error())
		return
	}
	if strings.TrimSpace(req.Question) == "" {
		s.fail(w, http.StatusBadRequest, CodeBadRequest, "question is required")
		return
	}
	modelName := req.Model
	if modelName == "" {
		modelName = s.cfg.DefaultModel
	}
	if _, err := nl2sql.ByName(modelName); err != nil {
		s.fail(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("unknown model %q (available: %s)", modelName, strings.Join(nl2sql.ModelNames(), ", ")))
		return
	}
	beam := req.Beam
	if beam <= 0 {
		beam = s.cfg.Beam
	}
	ex := t.example(req.Question)
	if ex == nil {
		s.fail(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("question is not in tenant %s's benchmark book", t.name))
		return
	}

	// The request budget starts before queueing: a request that waits out
	// its whole budget in the queue answers 504 instead of occupying a
	// slot it can no longer use.
	budget := s.cfg.Timeout
	if req.TimeoutMillis > 0 {
		if d := time.Duration(req.TimeoutMillis) * time.Millisecond; d < budget {
			budget = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()

	release, shed := s.admit(ctx)
	if shed {
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusTooManyRequests, CodeOverloaded,
			fmt.Sprintf("server at capacity (%d in flight, %d queued); retry later",
				s.cfg.MaxInflight, s.cfg.MaxQueue))
		return
	}
	if release == nil { // cancelled while queued
		s.finishCancelled(ctx, w)
		return
	}
	defer release()

	start := time.Now()
	snap := t.snapshot(&s.metrics)
	pipeline, err := t.pipeline(s, modelName, beam)
	if err != nil {
		s.fail(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	res, err := pipeline.Translate(ctx, *ex, snap.DB())
	s.metrics.observe(time.Since(start))
	if err != nil {
		if ctx.Err() != nil {
			s.finishCancelled(ctx, w)
			return
		}
		s.metrics.internal.Add(1)
		writeJSON(w, http.StatusInternalServerError,
			ErrorResponse{Error: ErrorDetail{Code: CodeInternal, Message: err.Error()}})
		return
	}
	s.metrics.ok.Add(1)
	writeJSON(w, http.StatusOK, TranslateResponse{
		Tenant:         t.name,
		Model:          modelName,
		SQL:            res.FinalSQL,
		Verified:       res.Verified,
		Degraded:       res.Degraded,
		Iterations:     res.Iterations,
		Retries:        res.Retries,
		Candidates:     len(res.Candidates),
		SnapshotEpoch:  snap.Epoch(),
		OverheadMicros: res.Overhead.Microseconds(),
		Plan:           s.explainPlan(ctx, req, res.FinalSQL, snap),
	})
}

// explainPlan renders the final SQL's plan against the request's pinned
// snapshot when the request asked for it. Best-effort on purpose: a
// translation that verified must not turn into an error because its plan
// could not be rendered, so any failure here just omits the field.
func (s *Server) explainPlan(ctx context.Context, req TranslateRequest, finalSQL string, snap *storage.Snapshot) string {
	if !req.Explain || finalSQL == "" {
		return ""
	}
	stmt, err := sqlparse.Parse(finalSQL)
	if err != nil {
		return ""
	}
	plan, err := sqleval.New(snap.DB()).ExplainPlan(ctx, stmt)
	if err != nil {
		return ""
	}
	return plan
}

// finishCancelled maps a dead request context to its terminal response:
// 504 when the budget expired, a silent count when the client went away
// (there is nobody left to read a body).
func (s *Server) finishCancelled(ctx context.Context, w http.ResponseWriter) {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		s.fail(w, http.StatusGatewayTimeout, CodeDeadline, "request budget exhausted")
		return
	}
	s.metrics.canceled.Add(1)
}
