package annotate

import (
	"testing"

	"cyclesql/internal/datasets"
	"cyclesql/internal/provenance"
	"cyclesql/internal/sqleval"
	"cyclesql/internal/sqlparse"
)

func annotateSQL(t *testing.T, sql string) []Annotation {
	t.Helper()
	db := datasets.FlightDB()
	stmt := sqlparse.MustParse(sql)
	rel, err := sqleval.New(db).Exec(stmt)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := provenance.Track(db, stmt, rel, 0)
	if err != nil {
		t.Fatal(err)
	}
	ann := Annotate(prov)
	if len(ann.Parts) == 0 {
		return nil
	}
	return ann.Parts[0]
}

func kinds(anns []Annotation) map[Kind]int {
	out := map[Kind]int{}
	for _, a := range anns {
		out[a.Kind]++
	}
	return out
}

func TestAnnotatePaperExample(t *testing.T) {
	anns := annotateSQL(t, "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.name = 'Airbus A340-300'")
	k := kinds(anns)
	if k[KindAggregate] != 1 || k[KindFilter] != 1 || k[KindJoin] != 1 {
		t.Fatalf("kinds = %v", k)
	}
	for _, a := range anns {
		switch a.Kind {
		case KindFilter:
			if a.Column != "T2.name" || a.Detail["value"] != "Airbus A340-300" || a.Detail["op"] != "=" {
				t.Fatalf("filter annotation: %+v", a)
			}
		case KindAggregate:
			if a.Detail["func"] != "count" || a.Detail["arg"] != "*" || a.Anchored() {
				t.Fatalf("aggregate annotation must be table-level: %+v", a)
			}
		}
	}
}

func TestAnnotateGroupHavingOrder(t *testing.T) {
	anns := annotateSQL(t, "SELECT origin, count(*) FROM flight GROUP BY origin HAVING count(*) > 1 ORDER BY count(*) DESC LIMIT 1")
	k := kinds(anns)
	if k[KindGroup] != 1 || k[KindHaving] != 1 || k[KindOrder] != 1 || k[KindProjection] != 1 {
		t.Fatalf("kinds = %v", k)
	}
	for _, a := range anns {
		if a.Kind == KindOrder {
			if a.Detail["dir"] != "descending" || a.Detail["limit"] != "1" {
				t.Fatalf("order detail: %v", a.Detail)
			}
		}
		if a.Kind == KindHaving && a.Detail["op"] != ">" {
			t.Fatalf("having detail: %v", a.Detail)
		}
	}
}

func TestAnnotateMembershipAndPattern(t *testing.T) {
	anns := annotateSQL(t, "SELECT name FROM aircraft WHERE aid NOT IN (SELECT aid FROM flight) AND name LIKE 'B%'")
	k := kinds(anns)
	if k[KindMembership] != 1 || k[KindPattern] != 1 {
		t.Fatalf("kinds = %v", k)
	}
	for _, a := range anns {
		if a.Kind == KindMembership {
			if a.Detail["not"] != "true" || a.Detail["subquery"] != "true" {
				t.Fatalf("membership detail: %v", a.Detail)
			}
		}
	}
}

func TestAnnotateDisjunction(t *testing.T) {
	anns := annotateSQL(t, "SELECT count(*) FROM flight WHERE origin = 'Chicago' OR destination = 'Tokyo'")
	disjuncts := 0
	for _, a := range anns {
		if a.Detail["disjunct"] == "true" {
			disjuncts++
		}
	}
	if disjuncts != 2 {
		t.Fatalf("disjunct annotations = %d", disjuncts)
	}
}

func TestAnnotateRangeAndNull(t *testing.T) {
	anns := annotateSQL(t, "SELECT name FROM aircraft WHERE distance BETWEEN 1000 AND 5000")
	if kinds(anns)[KindRange] != 1 {
		t.Fatalf("range missing: %v", kinds(anns))
	}
	anns = annotateSQL(t, "SELECT T2.flno FROM aircraft AS T1 LEFT JOIN flight AS T2 ON T1.aid = T2.aid WHERE T2.flno IS NULL")
	if kinds(anns)[KindNullCheck] != 1 {
		t.Fatalf("nullcheck missing: %v", kinds(anns))
	}
}

func TestAnnotateDistinct(t *testing.T) {
	anns := annotateSQL(t, "SELECT DISTINCT origin FROM flight")
	if kinds(anns)[KindDistinct] != 1 {
		t.Fatalf("distinct missing: %v", kinds(anns))
	}
}

func TestAnnotateCompoundParts(t *testing.T) {
	db := datasets.WorldDB()
	stmt := sqlparse.MustParse("SELECT name FROM country WHERE continent = 'Europe' INTERSECT SELECT name FROM country WHERE population > 1000000")
	rel, err := sqleval.New(db).Exec(stmt)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := provenance.Track(db, stmt, rel, 0)
	if err != nil {
		t.Fatal(err)
	}
	ann := Annotate(prov)
	if len(ann.Parts) != 2 {
		t.Fatalf("compound annotation parts = %d", len(ann.Parts))
	}
}
