// Package annotate implements CycleSQL's semantics-enrichment stage (paper
// §IV-B). It decomposes the translated SQL query into clause-level query
// units and overlays each unit's operation-level semantics onto the
// matching parts of the provenance: column-level annotations attach to a
// provenance column, table-level annotations (aggregates over *, HAVING,
// ORDER/LIMIT) attach to the provenance table as a whole, mirroring the
// paper's treatment of asterisk elements.
package annotate

import (
	"strings"

	"cyclesql/internal/provenance"
	"cyclesql/internal/sqlast"
)

// Kind classifies an annotation.
type Kind string

// Annotation kinds produced by the decomposition.
const (
	KindProjection Kind = "projection" // plain SELECT column
	KindAggregate  Kind = "aggregate"  // SELECT/HAVING aggregate
	KindFilter     Kind = "filter"     // WHERE comparison on a column
	KindMembership Kind = "membership" // IN / NOT IN
	KindPattern    Kind = "pattern"    // LIKE
	KindRange      Kind = "range"      // BETWEEN
	KindNullCheck  Kind = "nullcheck"  // IS [NOT] NULL
	KindExists     Kind = "exists"     // EXISTS subquery
	KindJoin       Kind = "join"       // JOIN ... ON
	KindGroup      Kind = "group"      // GROUP BY key
	KindHaving     Kind = "having"     // HAVING condition
	KindOrder      Kind = "order"      // ORDER BY (+ LIMIT)
	KindDistinct   Kind = "distinct"   // SELECT DISTINCT
)

// Annotation is one query unit's semantics, anchored to a provenance
// column (Column non-empty) or to the whole provenance table.
type Annotation struct {
	Kind   Kind
	Clause string            // source clause: SELECT, WHERE, HAVING, ...
	Column string            // anchor column ("" = whole table)
	Detail map[string]string // unit-specific fields (op, value, func, ...)
}

// Anchored reports whether the annotation attaches to a specific column.
func (a Annotation) Anchored() bool { return a.Column != "" }

// Annotated pairs a provenance with per-part annotation lists.
type Annotated struct {
	Prov  *provenance.Provenance
	Parts [][]Annotation // parallel to Prov.Parts
}

// Annotate decomposes every core of the traced query and aligns its units
// with the provenance parts.
func Annotate(prov *provenance.Provenance) *Annotated {
	out := &Annotated{Prov: prov}
	for _, part := range prov.Parts {
		out.Parts = append(out.Parts, decomposeCore(part.Core))
	}
	return out
}

// decomposeCore chunks one SELECT core into annotations, clause by clause.
func decomposeCore(core *sqlast.SelectCore) []Annotation {
	var anns []Annotation
	// SELECT clause.
	if core.Distinct {
		anns = append(anns, Annotation{Kind: KindDistinct, Clause: "SELECT"})
	}
	for _, it := range core.Items {
		if it.Star {
			continue
		}
		switch x := it.Expr.(type) {
		case *sqlast.ColumnRef:
			anns = append(anns, Annotation{
				Kind: KindProjection, Clause: "SELECT", Column: colName(x),
				Detail: map[string]string{"alias": it.Alias},
			})
		case *sqlast.FuncCall:
			if x.IsAggregate() {
				anns = append(anns, aggregateAnnotation(x, "SELECT"))
			}
		case *sqlast.Binary:
			// Arithmetic over aggregates (max(a) - min(a)).
			sqlast.WalkExpr(x, func(e sqlast.Expr) bool {
				if f, ok := e.(*sqlast.FuncCall); ok && f.IsAggregate() {
					anns = append(anns, aggregateAnnotation(f, "SELECT"))
				}
				return true
			})
		}
	}
	// WHERE clause, conjunct by conjunct.
	for _, c := range sqlast.Conjuncts(core.Where) {
		anns = append(anns, predicateAnnotations(c, "WHERE")...)
	}
	// JOIN conditions.
	if core.From != nil {
		for _, j := range core.From.Joins {
			if j.On == nil {
				continue
			}
			if b, ok := j.On.(*sqlast.Binary); ok && b.Op == "=" {
				l, lok := b.L.(*sqlast.ColumnRef)
				r, rok := b.R.(*sqlast.ColumnRef)
				if lok && rok {
					anns = append(anns, Annotation{
						Kind: KindJoin, Clause: "JOIN", Column: colName(l),
						Detail: map[string]string{"left": colName(l), "right": colName(r)},
					})
				}
			}
		}
	}
	// GROUP BY keys.
	for _, g := range core.GroupBy {
		if cr, ok := g.(*sqlast.ColumnRef); ok {
			anns = append(anns, Annotation{Kind: KindGroup, Clause: "GROUP BY", Column: colName(cr)})
		}
	}
	// HAVING: aggregate conditions apply to the whole (grouped) table.
	for _, c := range sqlast.Conjuncts(core.Having) {
		if b, ok := c.(*sqlast.Binary); ok {
			if f, ok := b.L.(*sqlast.FuncCall); ok && f.IsAggregate() {
				det := map[string]string{
					"func": strings.ToLower(f.Name),
					"op":   b.Op,
					"rhs":  sqlast.ExprSQL(b.R),
				}
				if !f.Star && len(f.Args) == 1 {
					det["arg"] = sqlast.ExprSQL(f.Args[0])
				}
				anns = append(anns, Annotation{Kind: KindHaving, Clause: "HAVING", Detail: det})
			}
		}
	}
	// ORDER BY (+ LIMIT) selects representative rows; table-level.
	for _, o := range core.OrderBy {
		det := map[string]string{"key": sqlast.ExprSQL(o.Expr)}
		if o.Desc {
			det["dir"] = "descending"
		} else {
			det["dir"] = "ascending"
		}
		if core.Limit != nil {
			det["limit"] = itoa(*core.Limit)
		}
		anns = append(anns, Annotation{Kind: KindOrder, Clause: "ORDER BY", Detail: det})
	}
	return anns
}

func aggregateAnnotation(f *sqlast.FuncCall, clause string) Annotation {
	det := map[string]string{"func": strings.ToLower(f.Name)}
	col := ""
	if f.Star {
		det["arg"] = "*"
	} else if len(f.Args) == 1 {
		det["arg"] = sqlast.ExprSQL(f.Args[0])
		if cr, ok := f.Args[0].(*sqlast.ColumnRef); ok {
			col = colName(cr)
		}
	}
	if f.Distinct {
		det["distinct"] = "true"
	}
	// Aggregates over * (or over a collapsed column) describe the whole
	// provenance table rather than one element.
	return Annotation{Kind: KindAggregate, Clause: clause, Column: col, Detail: det}
}

// predicateAnnotations maps one WHERE conjunct to annotations.
func predicateAnnotations(c sqlast.Expr, clause string) []Annotation {
	switch x := c.(type) {
	case *sqlast.Binary:
		if x.Op == "OR" {
			// Disjunctions annotate the table with each branch.
			var anns []Annotation
			for _, branch := range []sqlast.Expr{x.L, x.R} {
				for _, a := range predicateAnnotations(branch, clause) {
					a.Detail["disjunct"] = "true"
					anns = append(anns, a)
				}
			}
			return anns
		}
		cr, okL := x.L.(*sqlast.ColumnRef)
		if !okL {
			return nil
		}
		det := map[string]string{"op": x.Op}
		switch r := x.R.(type) {
		case *sqlast.Literal:
			det["value"] = r.Value.String()
		case *sqlast.SubqueryExpr:
			det["value"] = describeSub(r.Sub)
			det["subquery"] = "true"
		default:
			det["value"] = sqlast.ExprSQL(x.R)
		}
		return []Annotation{{Kind: KindFilter, Clause: clause, Column: colName(cr), Detail: det}}
	case *sqlast.InExpr:
		cr, ok := x.X.(*sqlast.ColumnRef)
		if !ok {
			return nil
		}
		det := map[string]string{}
		if x.Not {
			det["not"] = "true"
		}
		if x.Sub != nil {
			det["value"] = describeSub(x.Sub)
			det["subquery"] = "true"
		} else {
			vals := make([]string, len(x.List))
			for i, v := range x.List {
				vals[i] = sqlast.ExprSQL(v)
			}
			det["value"] = strings.Join(vals, ", ")
		}
		return []Annotation{{Kind: KindMembership, Clause: clause, Column: colName(cr), Detail: det}}
	case *sqlast.LikeExpr:
		cr, ok := x.X.(*sqlast.ColumnRef)
		if !ok {
			return nil
		}
		det := map[string]string{"pattern": sqlast.ExprSQL(x.Pattern)}
		if x.Not {
			det["not"] = "true"
		}
		return []Annotation{{Kind: KindPattern, Clause: clause, Column: colName(cr), Detail: det}}
	case *sqlast.BetweenExpr:
		cr, ok := x.X.(*sqlast.ColumnRef)
		if !ok {
			return nil
		}
		return []Annotation{{Kind: KindRange, Clause: clause, Column: colName(cr), Detail: map[string]string{
			"lo": sqlast.ExprSQL(x.Lo), "hi": sqlast.ExprSQL(x.Hi),
		}}}
	case *sqlast.IsNullExpr:
		cr, ok := x.X.(*sqlast.ColumnRef)
		if !ok {
			return nil
		}
		det := map[string]string{}
		if x.Not {
			det["not"] = "true"
		}
		return []Annotation{{Kind: KindNullCheck, Clause: clause, Column: colName(cr), Detail: det}}
	case *sqlast.ExistsExpr:
		det := map[string]string{"value": describeSub(x.Sub)}
		if x.Not {
			det["not"] = "true"
		}
		return []Annotation{{Kind: KindExists, Clause: clause, Detail: det}}
	}
	return nil
}

// describeSub summarizes a subquery for annotation detail text: its
// projection and its literal filters.
func describeSub(sub *sqlast.SelectStmt) string {
	core := sub.Cores[0]
	var b strings.Builder
	for i, it := range core.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.SQL())
	}
	fs := provenance.Filters(core)
	if len(fs) > 0 {
		b.WriteString(" where ")
		for i, f := range fs {
			if i > 0 {
				b.WriteString(" and ")
			}
			b.WriteString(f.Column.Column)
			b.WriteByte(' ')
			b.WriteString(strings.ToLower(f.Op))
			b.WriteByte(' ')
			b.WriteString(f.Value.String())
		}
	}
	return b.String()
}

func colName(cr *sqlast.ColumnRef) string {
	if cr.Table != "" {
		return cr.Table + "." + cr.Column
	}
	return cr.Column
}

func itoa(n int64) string {
	if n < 0 {
		return "-" + itoa(-n)
	}
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + itoa(n%10)
}
