package core

import (
	"context"
	"testing"
	"time"

	"cyclesql/internal/datasets"
	"cyclesql/internal/nl2sql"
	"cyclesql/internal/nli"
)

// gatedVerifier validates exactly one candidate (by its premise SQL)
// immediately; every other candidate's "inference" blocks until the loop
// cancels it. It stands in for a verifier whose forward pass is in flight
// when an earlier beam candidate validates.
type gatedVerifier struct {
	winnerSQL string
	aborted   chan struct{} // closed when a straggler observes cancellation
}

func (g *gatedVerifier) Name() string                      { return "gated" }
func (g *gatedVerifier) Score(string, nli.Premise) float64 { return 0 }
func (g *gatedVerifier) Verify(h string, p nli.Premise) bool {
	ok, _ := g.VerifyContext(context.Background(), h, p)
	return ok
}

func (g *gatedVerifier) VerifyContext(ctx context.Context, h string, p nli.Premise) (bool, error) {
	if p.SQL == g.winnerSQL {
		return true, nil
	}
	select {
	case <-ctx.Done():
		close(g.aborted)
		return false, ctx.Err()
	case <-time.After(30 * time.Second):
		return false, nil
	}
}

// TestParallelWinnerAbortsStragglerVerify closes the cancellation story:
// once a candidate validates, a straggler whose (simulated) verifier
// inference is already in flight must be aborted through VerifyContext
// rather than left to run to completion — previously only its SQL
// execution and explanation honored the cancellation.
func TestParallelWinnerAbortsStragglerVerify(t *testing.T) {
	bench := datasets.Spider()
	ex := bench.Dev[0]
	db := bench.DB(ex.DBName)

	winner := ex.Gold
	straggler := ex.Gold.Clone()
	lim := int64(1)
	straggler.Cores[len(straggler.Cores)-1].Limit = &lim
	if winner.SQL() == straggler.SQL() {
		t.Fatal("candidates must render distinct SQL")
	}
	v := &gatedVerifier{winnerSQL: nli.SQLOneLine(winner.SQL()), aborted: make(chan struct{})}
	model := stubModel{cands: []nl2sql.Candidate{candidateOf(winner), candidateOf(straggler)}}
	p := New(model, WithVerifier(v), WithBenchmark(bench.Name))
	p.Parallelism = 2

	start := time.Now()
	res, err := p.Translate(context.Background(), ex, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.Iterations != 1 || res.FinalSQL != winner.SQL() {
		t.Fatalf("winner must validate at iteration 1: %+v", res)
	}
	// Translate waits out in-flight speculation before returning, so a
	// bounded wall clock proves the straggler's inference was aborted, not
	// awaited. The explicit channel check distinguishes "aborted" from
	// "never started" (a worker may not have claimed the straggler yet,
	// in which case finishing fast is just as correct).
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("straggler verifier ran to completion (%s) instead of aborting", elapsed)
	}
	select {
	case <-v.aborted:
	default:
		// The straggler was never claimed before the winner committed —
		// acceptable (cancellation prevented the claim entirely).
	}
}

// TestSequentialVerifyContextParity pins that threading the verdict
// through nli.VerifyContext did not change the sequential loop: a
// context-free verifier behaves exactly as before, and Errors stays empty
// for completed verdicts.
func TestSequentialVerifyContextParity(t *testing.T) {
	bench := datasets.Spider()
	ex := bench.Dev[0]
	db := bench.DB(ex.DBName)
	accept := nli.Func{Label: "accept-all", Fn: func(string, nli.Premise) bool { return true }}
	p := New(stubModel{cands: []nl2sql.Candidate{candidateOf(ex.Gold)}}, WithVerifier(accept), WithBenchmark(bench.Name))
	res, err := p.Translate(context.Background(), ex, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || !res.Errors[0].IsZero() {
		t.Fatalf("verdict through VerifyContext diverged: %+v", res)
	}
}

var _ nli.ContextVerifier = (*gatedVerifier)(nil)
