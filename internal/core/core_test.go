package core

import (
	"context"
	"sync"
	"testing"

	"cyclesql/internal/datasets"
	"cyclesql/internal/eval"
	"cyclesql/internal/nl2sql"
	"cyclesql/internal/nli"
)

// testVerifier trains one shared verifier on a slice of the Spider train
// split; tests share it because training is the expensive step.
var (
	verifierOnce sync.Once
	testVerifier *nli.Trained
)

func sharedVerifier(t *testing.T) *nli.Trained {
	t.Helper()
	verifierOnce.Do(func() {
		bench := datasets.Spider()
		testVerifier = TrainVerifier(context.Background(), bench,
			TrainDataConfig{Models: []string{"resdsql-3b", "gpt-3.5-turbo", "smbop", "picard-3b"}, MaxExamples: 400, Seed: 1},
			nli.TrainConfig{Seed: 2, Epochs: 16},
		)
	})
	return testVerifier
}

func TestBuildTrainingPairsProtocol(t *testing.T) {
	bench := datasets.Spider()
	pairs := BuildTrainingPairs(context.Background(), bench, TrainDataConfig{Models: []string{"gpt-3.5-turbo"}, MaxExamples: 40, Seed: 3})
	if len(pairs) < 40 {
		t.Fatalf("too few pairs: %d", len(pairs))
	}
	pos, neg := 0, 0
	for _, p := range pairs {
		if p.Label == 1 {
			pos++
		} else {
			neg++
		}
		if p.Premise.Explanation == "" || p.Hypothesis == "" {
			t.Fatal("empty premise or hypothesis")
		}
	}
	if pos == 0 || neg == 0 {
		t.Fatalf("both classes required: pos=%d neg=%d", pos, neg)
	}
}

func TestTrainedVerifierDiscriminates(t *testing.T) {
	v := sharedVerifier(t)
	bench := datasets.Spider()
	// Held-out pairs from a later window of the train split.
	cfg := TrainDataConfig{Models: []string{"resdsql-large"}, MaxExamples: 0, Seed: 9}
	heldBench := &datasets.Benchmark{Name: bench.Name, Databases: bench.Databases, Train: bench.Train[300:380]}
	pairs := BuildTrainingPairs(context.Background(), heldBench, cfg)
	acc := nli.Accuracy(v, pairs)
	if acc < 0.70 {
		t.Fatalf("verifier held-out accuracy = %.2f, want >= 0.70", acc)
	}
}

// The headline property (paper Table I): the feedback loop must improve
// execution accuracy over the base model on held-out dev examples.
func TestCycleSQLImprovesExecutionAccuracy(t *testing.T) {
	v := sharedVerifier(t)
	bench := datasets.Spider()
	dev := bench.Dev
	if len(dev) > 160 {
		dev = dev[:160]
	}
	for _, modelName := range []string{"resdsql-3b", "gpt-3.5-turbo"} {
		p := New(nl2sql.MustByName(modelName), WithVerifier(v), WithBenchmark(bench.Name))
		baseOK, loopOK := 0, 0
		for _, ex := range dev {
			db := bench.DB(ex.DBName)
			base, err := p.Baseline(ex, db)
			if err != nil {
				t.Fatal(err)
			}
			if eval.EX(db, base, ex.Gold) {
				baseOK++
			}
			res, err := p.Translate(context.Background(), ex, db)
			if err != nil {
				t.Fatal(err)
			}
			if eval.EX(db, res.Final, ex.Gold) {
				loopOK++
			}
		}
		t.Logf("%s: base %d/%d, +cyclesql %d/%d", modelName, baseOK, len(dev), loopOK, len(dev))
		if loopOK < baseOK {
			t.Fatalf("%s: CycleSQL regressed EX: base %d, loop %d", modelName, baseOK, loopOK)
		}
	}
}

func TestOracleVerifierBoundsTrained(t *testing.T) {
	v := sharedVerifier(t)
	bench := datasets.Spider()
	dev := bench.Dev[:120]
	oracle := OracleVerifier(bench, IndexByQuestion(dev))
	model := nl2sql.MustByName("resdsql-3b")
	trainedOK, oracleOK := 0, 0
	for _, ex := range dev {
		db := bench.DB(ex.DBName)
		pt := New(model, WithVerifier(v), WithBenchmark(bench.Name))
		rt, err := pt.Translate(context.Background(), ex, db)
		if err != nil {
			t.Fatal(err)
		}
		if eval.EX(db, rt.Final, ex.Gold) {
			trainedOK++
		}
		po := New(model, WithVerifier(oracle), WithBenchmark(bench.Name))
		ro, err := po.Translate(context.Background(), ex, db)
		if err != nil {
			t.Fatal(err)
		}
		if eval.EX(db, ro.Final, ex.Gold) {
			oracleOK++
		}
	}
	t.Logf("trained %d/%d oracle %d/%d", trainedOK, len(dev), oracleOK, len(dev))
	if oracleOK < trainedOK {
		t.Fatalf("oracle (%d) must bound the trained verifier (%d)", oracleOK, trainedOK)
	}
}

func TestTranslateFallsBackToTop1(t *testing.T) {
	bench := datasets.Spider()
	ex := bench.Dev[0]
	db := bench.DB(ex.DBName)
	reject := nli.Func{Label: "reject-all", Fn: func(string, nli.Premise) bool { return false }}
	p := New(nl2sql.MustByName("resdsql-3b"), WithVerifier(reject), WithBenchmark(bench.Name))
	res, err := p.Translate(context.Background(), ex, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified {
		t.Fatal("reject-all verifier cannot verify")
	}
	if res.FinalSQL != res.Candidates[0].SQL {
		t.Fatal("fallback must be the top-1 candidate")
	}
	if res.Iterations != len(res.Candidates) {
		t.Fatalf("must exhaust the beam: %d vs %d", res.Iterations, len(res.Candidates))
	}
}

func TestTranslateAcceptsFirstVerified(t *testing.T) {
	bench := datasets.Spider()
	ex := bench.Dev[0]
	db := bench.DB(ex.DBName)
	accept := nli.Func{Label: "accept-all", Fn: func(string, nli.Premise) bool { return true }}
	p := New(nl2sql.MustByName("resdsql-3b"), WithVerifier(accept), WithBenchmark(bench.Name))
	res, err := p.Translate(context.Background(), ex, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.Iterations != 1 {
		t.Fatalf("accept-all must verify at iteration 1, got %d verified=%v", res.Iterations, res.Verified)
	}
}

func TestSQL2NLFeedbackIsDataBlind(t *testing.T) {
	bench := datasets.Spider()
	ex := bench.Dev[0]
	db := bench.DB(ex.DBName)
	fb := SQL2NLFeedback{}
	rel := execGold(t, bench, ex)
	p1, err := fb.Premise(context.Background(), db, ex.Gold, rel)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Explanation == "" {
		t.Fatal("empty sql2nl explanation")
	}
	// The explanation must not depend on the data: re-deriving it from an
	// empty relation yields the same text.
	p2, _ := fb.Premise(context.Background(), db, ex.Gold, nil)
	if p1.Explanation != p2.Explanation {
		t.Fatal("sql2nl feedback must ignore the data instance")
	}
}

func TestIterationsBoundedByBeam(t *testing.T) {
	v := sharedVerifier(t)
	bench := datasets.Spider()
	p := New(nl2sql.MustByName("picard-3b"), WithVerifier(v), WithBenchmark(bench.Name))
	p.BeamSize = 4
	for _, ex := range bench.Dev[:20] {
		res, err := p.Translate(context.Background(), ex, bench.DB(ex.DBName))
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations < 1 || res.Iterations > 4 {
			t.Fatalf("iterations %d out of [1,4]", res.Iterations)
		}
	}
}
