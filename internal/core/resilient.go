package core

import (
	"context"

	"cyclesql/internal/nl2sql"
	"cyclesql/internal/nli"
	"cyclesql/internal/resilience"
	"cyclesql/internal/sqleval"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// stage runs one pipeline stage under the resilience policy: the stage's
// breaker gates admission, transient faults are retried with the policy's
// backoff inside ctx's budget, and a panicking attempt is recovered into
// an error (retryable when the panic value was a transient-marked error —
// injected chaos — permanent otherwise). It returns the stage's outcome
// as a StageError (zero on success), the number of attempts consumed, and
// whether an open breaker denied the call outright.
//
// Breaker accounting records infrastructure signal only: success for any
// completed answer — including a permanent semantic error, which proves
// the stage is up — failure for a transient fault that survived the whole
// retry budget, and nothing for context cancellation (the budget died,
// not the stage). Each attempt is identified to deterministic fault
// sources by the per-call key plus the attempt number (resilience.
// WithAttempt), so retries reroll their faults schedule-independently.
//
// Requires p.Resilience != nil; the policy-free path never comes here.
func (p *Pipeline) stage(ctx context.Context, st resilience.Stage, key string, fn func(context.Context) error) (se resilience.StageError, attempts int, open bool) {
	pol := p.Resilience
	col := pol.Collect()
	br := pol.BreakerFor(st)
	if !br.Allow() {
		return resilience.StageError{Stage: st, Err: "circuit open", Transient: true}, 0, true
	}
	attempts, err := pol.RetryPolicy().Do(ctx, key, func(actx context.Context) (aerr error) {
		defer func() {
			if v := recover(); v != nil {
				aerr = resilience.Recovered(v)
				col.AddPanicRecovered()
			}
		}()
		return fn(actx)
	})
	col.AddAttempts(attempts)
	if attempts > 1 {
		col.AddRetries(attempts - 1)
	}
	switch {
	case err == nil:
		br.Record(true)
		return resilience.StageError{}, attempts, false
	case resilience.IsContextError(err):
		// No signal about the stage itself; free a half-open probe slot.
		br.Release()
	default:
		// Transient exhausted = infrastructure failure; a permanent
		// (semantic) error means the stage answered and is healthy.
		br.Record(!resilience.IsTransient(err))
	}
	return resilience.StageError{Stage: st, Attempt: attempts, Err: err.Error(), Transient: resilience.IsTransient(err)}, attempts, false
}

// examineResilient is examine's policy-wrapped form: the same execute →
// explain → verify chain, each link run through stage. An open breaker on
// execute or explain just fails the candidate (the loop moves on); an
// open breaker on verify degrades the whole translation — the candidate
// executed and explained fine, the verdict is what's unavailable — which
// the loops surface as Result.Degraded with the top-1 fallback.
func (p *Pipeline) examineResilient(ctx context.Context, question string, db *storage.Database, fb Feedback, executor *sqleval.Executor, cand nl2sql.Candidate) candOutcome {
	var out candOutcome
	out.premise = nli.Premise{SQL: cand.SQL}

	var rel *sqltypes.Relation
	se, attempts, _ := p.stage(ctx, resilience.StageExecute, cand.SQL, func(actx context.Context) error {
		var err error
		rel, err = executor.ExecContext(actx, cand.Stmt)
		return err
	})
	out.retries += retriesOf(attempts)
	if !se.IsZero() {
		out.err = se
		return out
	}

	var premise nli.Premise
	se, attempts, _ = p.stage(ctx, resilience.StageExplain, cand.SQL, func(actx context.Context) error {
		var err error
		premise, err = fb.Premise(actx, db, cand.Stmt, rel)
		return err
	})
	out.retries += retriesOf(attempts)
	if !se.IsZero() {
		out.err = se
		return out
	}
	out.premise = premise

	var verified bool
	se, attempts, open := p.stage(ctx, resilience.StageVerify, question+"\x00"+cand.SQL, func(actx context.Context) error {
		var err error
		verified, err = nli.VerifyContext(actx, p.Verifier, question, premise)
		return err
	})
	out.retries += retriesOf(attempts)
	if open {
		out.err = se
		out.degraded = true
		return out
	}
	if !se.IsZero() {
		out.err = se
		return out
	}
	out.verified = verified
	return out
}

func retriesOf(attempts int) int {
	if attempts > 1 {
		return attempts - 1
	}
	return 0
}
