package core

import (
	"context"
	"testing"

	"cyclesql/internal/datasets"
	"cyclesql/internal/nl2sql"
	"cyclesql/internal/nli"
	"cyclesql/internal/resilience"
)

func TestNewDefaultsMatchPaperSettings(t *testing.T) {
	model := nl2sql.MustByName("resdsql-3b")
	p := New(model)
	if p.BeamSize != 8 {
		t.Fatalf("default beam = %d, want 8", p.BeamSize)
	}
	if p.Parallelism != 0 || p.Resilience != nil {
		t.Fatal("defaults must be the sequential, policy-free loop")
	}
	if p.Feedback == nil || p.Feedback.Name() != "cyclesql" {
		t.Fatal("default feedback must be the data-grounded explainer")
	}
	if p.execs == nil {
		t.Fatal("New must arm the warm per-database executor cache")
	}
}

func TestOptionsApply(t *testing.T) {
	model := nl2sql.MustByName("resdsql-3b")
	pol := &resilience.Policy{Retry: resilience.Retry{MaxAttempts: 3}}
	v := nli.FewShotLLM{}
	p := New(model,
		WithVerifier(v),
		WithBenchmark("spider"),
		WithBeamSize(5),
		WithParallelism(4),
		WithResilience(pol),
		WithFeedback(SQL2NLFeedback{}),
	)
	if p.Verifier != v || p.Benchmark != "spider" || p.BeamSize != 5 || p.Parallelism != 4 || p.Resilience != pol {
		t.Fatalf("options not applied: %+v", p)
	}
	if p.Feedback.Name() != "sql2nl" {
		t.Fatalf("feedback option not applied: %s", p.Feedback.Name())
	}
	// Guard rails: a non-positive beam keeps the default, a nil feedback
	// restores it.
	p = New(model, WithBeamSize(0), WithFeedback(nil))
	if p.BeamSize != 8 || p.Feedback.Name() != "cyclesql" {
		t.Fatalf("guard rails failed: beam=%d feedback=%s", p.BeamSize, p.Feedback.Name())
	}
}

// TestNewPipelineWrapperEquivalence locks the compatibility contract: the
// deprecated positional constructor is exactly New with the verifier and
// benchmark options, down to the translation it produces.
func TestNewPipelineWrapperEquivalence(t *testing.T) {
	bench := datasets.Spider()
	ex := bench.Dev[0]
	model := nl2sql.MustByName("resdsql-3b")
	accept := nli.Func{Label: "accept", Fn: func(string, nli.Premise) bool { return true }}

	old := NewPipeline(model, accept, bench.Name)
	opt := New(model, WithVerifier(accept), WithBenchmark(bench.Name))
	if old.BeamSize != opt.BeamSize || old.Benchmark != opt.Benchmark || old.Parallelism != opt.Parallelism {
		t.Fatal("wrapper and options constructor disagree on configuration")
	}
	db := bench.DB(ex.DBName)
	r1, err1 := old.Translate(context.Background(), ex, db)
	r2, err2 := opt.Translate(context.Background(), ex, db)
	if err1 != nil || err2 != nil {
		t.Fatalf("translate errors: %v / %v", err1, err2)
	}
	if r1.FinalSQL != r2.FinalSQL || r1.Verified != r2.Verified || r1.Iterations != r2.Iterations {
		t.Fatalf("wrapper parity broken: %q/%v/%d vs %q/%v/%d",
			r1.FinalSQL, r1.Verified, r1.Iterations, r2.FinalSQL, r2.Verified, r2.Iterations)
	}
}
