package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cyclesql/internal/datasets"
	"cyclesql/internal/explain"
	"cyclesql/internal/nl2sql"
	"cyclesql/internal/nli"
	"cyclesql/internal/resilience"
	"cyclesql/internal/sqlast"
	"cyclesql/internal/storage"
)

// TestSequentialParallelParity is the concurrency contract's acceptance
// bar: over the Spider dev slice the existing parity suites use, the
// parallel loop must produce a Result identical to the sequential loop —
// same Final, Verified, Iterations, Premises and Errors — at every
// parallelism level.
func TestSequentialParallelParity(t *testing.T) {
	v := sharedVerifier(t)
	bench := datasets.Spider()
	dev := bench.Dev
	if len(dev) > 200 {
		dev = dev[:200]
	}
	model := nl2sql.MustByName("resdsql-3b")
	seq := New(model, WithVerifier(v), WithBenchmark(bench.Name))
	for _, workers := range []int{4, 8} {
		par := New(model, WithVerifier(v), WithBenchmark(bench.Name))
		par.Parallelism = workers
		for _, ex := range dev {
			db := bench.DB(ex.DBName)
			rs, err := seq.Translate(context.Background(), ex, db)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := par.Translate(context.Background(), ex, db)
			if err != nil {
				t.Fatal(err)
			}
			if rs.FinalSQL != rp.FinalSQL || rs.Verified != rp.Verified || rs.Iterations != rp.Iterations {
				t.Fatalf("parallel=%d diverges on %q:\nseq: final=%q verified=%v iter=%d\npar: final=%q verified=%v iter=%d",
					workers, ex.Question, rs.FinalSQL, rs.Verified, rs.Iterations, rp.FinalSQL, rp.Verified, rp.Iterations)
			}
			if len(rs.Premises) != len(rp.Premises) || len(rs.Errors) != len(rp.Errors) {
				t.Fatalf("parallel=%d premise/error counts diverge on %q: %d/%d vs %d/%d",
					workers, ex.Question, len(rs.Premises), len(rs.Errors), len(rp.Premises), len(rp.Errors))
			}
			for i := range rs.Premises {
				if rs.Premises[i] != rp.Premises[i] {
					t.Fatalf("parallel=%d premise %d diverges on %q:\nseq: %+v\npar: %+v",
						workers, i, ex.Question, rs.Premises[i], rp.Premises[i])
				}
				if rs.Errors[i] != rp.Errors[i] {
					t.Fatalf("parallel=%d error %d diverges on %q: %q vs %q",
						workers, i, ex.Question, rs.Errors[i], rp.Errors[i])
				}
			}
		}
	}
}

// TestConcurrentTranslateStress drives one shared Pipeline through
// overlapping Translate calls — each of which verifies its own candidates
// in parallel — across interleaved databases. Run under -race, it
// exercises every shared structure of the loop at once: the executor and
// explainer caches, the per-database executors' plan caches, the lazy
// storage indexes, and the tracker memos.
func TestConcurrentTranslateStress(t *testing.T) {
	bench := datasets.Spider()
	dev := bench.Dev
	if len(dev) > 48 {
		dev = dev[:48]
	}
	p := New(nl2sql.MustByName("picard-3b"), WithVerifier(nli.FewShotLLM{}), WithBenchmark(bench.Name))
	p.Parallelism = 4

	const drivers = 4
	var wg sync.WaitGroup
	errs := make(chan error, drivers)
	for d := 0; d < drivers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for i := d; i < len(dev); i += drivers {
				ex := dev[i]
				res, err := p.Translate(context.Background(), ex, bench.DB(ex.DBName))
				if err != nil {
					errs <- fmt.Errorf("driver %d, %q: %w", d, ex.Question, err)
					return
				}
				if res.Iterations < 1 || res.Iterations > len(res.Candidates) {
					errs <- fmt.Errorf("driver %d, %q: iterations %d out of range", d, ex.Question, res.Iterations)
					return
				}
			}
		}(d)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestBoundedCacheConcurrent exercises concurrent get/put/getOrCreate on
// one boundedCache — the race that exists today for any caller sharing a
// Pipeline across goroutines, fixed by the cache's mutex.
func TestBoundedCacheConcurrent(t *testing.T) {
	c := &boundedCache[int, int]{limit: 8}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g + i) % 12 // cross the eviction limit on purpose
				c.put(k, g)
				if v, ok := c.get(k); ok && v > 8 {
					t.Errorf("impossible cached value %d", v)
				}
				got := c.getOrCreate(k, func() int { return g })
				if got > 8 {
					t.Errorf("impossible created value %d", got)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestBoundedCacheGetOrCreateShares asserts the atomicity that matters to
// the loop: concurrent cold-key callers must all observe one value.
func TestBoundedCacheGetOrCreateShares(t *testing.T) {
	c := &boundedCache[string, *int]{limit: 4}
	var wg sync.WaitGroup
	results := make([]*int, 16)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = c.getOrCreate("k", func() *int { return new(int) })
		}(g)
	}
	wg.Wait()
	for _, r := range results[1:] {
		if r != results[0] {
			t.Fatal("getOrCreate handed different values to concurrent callers")
		}
	}
}

// stubModel returns a fixed candidate list, letting tests stage beams with
// known-broken SQL.
type stubModel struct{ cands []nl2sql.Candidate }

func (s stubModel) Name() string               { return "stub" }
func (s stubModel) BaseLatency() time.Duration { return 0 }
func (s stubModel) Translate(string, datasets.Example, *storage.Database, int) []nl2sql.Candidate {
	return s.cands
}

func candidateOf(stmt *sqlast.SelectStmt) nl2sql.Candidate {
	return nl2sql.Candidate{SQL: stmt.SQL(), Stmt: stmt, Score: 1}
}

// TestTranslateRecordsCandidateErrors covers the premise-less fallback: a
// top-1 candidate that cannot execute must surface why, so drivers can
// tell "failed to execute" apart from "examined but not verified".
func TestTranslateRecordsCandidateErrors(t *testing.T) {
	bench := datasets.Spider()
	ex := bench.Dev[0]
	db := bench.DB(ex.DBName)
	bad := sqlast.Wrap(&sqlast.SelectCore{
		Items: []sqlast.SelectItem{{Star: true}},
		From:  &sqlast.FromClause{Base: sqlast.TableRef{Name: "no_such_table"}},
	})
	model := stubModel{cands: []nl2sql.Candidate{candidateOf(bad), candidateOf(ex.Gold)}}
	for _, workers := range []int{1, 4} {
		reject := nli.Func{Label: "reject-all", Fn: func(string, nli.Premise) bool { return false }}
		p := New(model, WithVerifier(reject), WithBenchmark(bench.Name))
		p.Parallelism = workers
		res, err := p.Translate(context.Background(), ex, db)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verified {
			t.Fatal("reject-all verifier cannot verify")
		}
		if res.FinalSQL != bad.SQL() {
			t.Fatalf("fallback must still be the top-1 candidate, got %q", res.FinalSQL)
		}
		if len(res.Errors) != 2 {
			t.Fatalf("want 2 error slots, got %d", len(res.Errors))
		}
		if res.Errors[0].Stage != resilience.StageExecute || res.Errors[0].Err == "" {
			t.Fatalf("candidate 1 must record its execution failure, got %+v", res.Errors[0])
		}
		if !strings.HasPrefix(res.Errors[0].Error(), "execute: ") {
			t.Fatalf("stage error must render the execute prefix drivers log, got %q", res.Errors[0].Error())
		}
		if !res.Errors[1].IsZero() {
			t.Fatalf("candidate 2 executed fine, got error %+v", res.Errors[1])
		}
		if res.Premises[0].Explanation != "" || res.Premises[0].SQL != bad.SQL() {
			t.Fatalf("failed candidate keeps the empty premise shape, got %+v", res.Premises[0])
		}
	}
}

// TestDataGroundedPolishSetOnce pins the fix for the write-on-read race:
// the cached explainer gets its polisher at construction and repeated
// lookups return the same explainer without reassigning it.
func TestDataGroundedPolishSetOnce(t *testing.T) {
	bench := datasets.Spider()
	db := bench.DB(bench.Dev[0].DBName)
	d := NewDataGrounded()
	d.Polish = explain.RulePolisher{}
	e1 := d.explainer(db)
	e2 := d.explainer(db)
	if e1 != e2 {
		t.Fatal("cached explainer must be shared per database")
	}
	if e1.Polish == nil {
		t.Fatal("polisher must be set on the cached explainer at construction")
	}
}
