package core

import (
	"context"
	"sync"
	"sync/atomic"

	"cyclesql/internal/datasets"
	"cyclesql/internal/nl2sql"
	"cyclesql/internal/nli"
	"cyclesql/internal/resilience"
	"cyclesql/internal/sqleval"
	"cyclesql/internal/storage"
)

// runParallel examines beam candidates speculatively on a bounded worker
// pool while committing outcomes strictly in beam order, preserving the
// paper's sequential semantics exactly: the first candidate (in beam
// order) whose explanation validates wins, Iterations counts candidates
// exactly as the sequential loop does, and Premises/Errors line up with
// Candidates. When a candidate validates, the speculative context derived
// below is cancelled: candidates not yet claimed are never started, and
// work already in flight is aborted mid-query (the executor polls the
// context inside its scan/join loops) rather than left to run to
// completion. Aborted outcomes belong to candidates after the winner, so
// they are discarded unread and parity with the sequential loop holds —
// every examine call is a pure read of the database, so abandoned work
// has no side effects beyond warmed caches.
func (p *Pipeline) runParallel(ctx context.Context, res *Result, ex datasets.Example, db *storage.Database, fb Feedback, executor *sqleval.Executor, candidates []nl2sql.Candidate) {
	n := len(candidates)
	workers := p.Parallelism
	if workers > n {
		workers = n
	}

	// specCtx governs speculation: it inherits the caller's deadline and
	// cancellation, and is additionally cancelled the moment a winner
	// commits, so stragglers abandon their executions instead of finishing
	// them.
	specCtx, cancelSpec := context.WithCancel(ctx)
	defer cancelSpec()

	// One buffered slot per candidate: workers never block publishing, so
	// an early win cannot deadlock stragglers, and the committer below
	// consumes outcomes in beam order regardless of completion order.
	outcomes := make([]chan candOutcome, n)
	for i := range outcomes {
		outcomes[i] = make(chan candOutcome, 1)
	}
	var next atomic.Int64 // claim counter: workers take candidates in beam order
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := specCtx.Err(); err != nil {
					// Every claimed slot must be published, even under a
					// dead context: the committer may still be draining
					// beam order (the caller's deadline fired mid-loop),
					// and an unpublished slot would block it forever. The
					// outcome mirrors what examine would have produced —
					// the execute stage observing the dead context before
					// any attempt ran.
					outcomes[i] <- candOutcome{premise: nli.Premise{SQL: candidates[i].SQL}, err: resilience.StageError{Stage: resilience.StageExecute, Attempt: 1, Err: err.Error()}}
					continue
				}
				outcomes[i] <- p.examine(specCtx, ex.Question, db, fb, executor, candidates[i])
			}
		}()
	}

	// Commit in beam order. specCtx is only cancelled after outcomes
	// 0..winner have all been consumed, so no worker can abort a candidate
	// the committer still needs — cancellation can only taint outcomes the
	// loop below never reads. A caller-cancelled ctx surfaces here as fast
	// error outcomes for the remaining candidates; Translate then discards
	// the Result and returns the context's error.
	for i := 0; i < n; i++ {
		o := <-outcomes[i]
		res.Iterations = i + 1
		res.Premises = append(res.Premises, o.premise)
		res.Errors = append(res.Errors, o.err)
		res.Retries += o.retries
		if o.degraded {
			// Verify breaker open: stop committing (the sequential loop
			// stops examining here) and abort in-flight speculation — every
			// later candidate would hit the same open circuit.
			res.Degraded = true
			cancelSpec()
			break
		}
		if o.verified {
			res.Final = candidates[i].Stmt
			res.FinalSQL = candidates[i].SQL
			res.Verified = true
			cancelSpec()
			break
		}
	}
	// Wait out in-flight speculation before returning so the caller never
	// observes background reads against the database after Translate.
	wg.Wait()
}
