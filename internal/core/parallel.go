package core

import (
	"sync"
	"sync/atomic"

	"cyclesql/internal/datasets"
	"cyclesql/internal/nl2sql"
	"cyclesql/internal/sqleval"
	"cyclesql/internal/storage"
)

// runParallel examines beam candidates speculatively on a bounded worker
// pool while committing outcomes strictly in beam order, preserving the
// paper's sequential semantics exactly: the first candidate (in beam
// order) whose explanation validates wins, Iterations counts candidates
// exactly as the sequential loop does, and Premises/Errors line up with
// Candidates. Candidates beyond the winner that have not started are
// cancelled; work already in flight finishes and is discarded — every
// examine call is a pure read of the database, so discarded work has no
// side effects beyond warmed caches.
func (p *Pipeline) runParallel(res *Result, ex datasets.Example, db *storage.Database, fb Feedback, executor *sqleval.Executor, candidates []nl2sql.Candidate) {
	n := len(candidates)
	workers := p.Parallelism
	if workers > n {
		workers = n
	}

	// One buffered slot per candidate: workers never block publishing, so
	// an early win cannot deadlock stragglers, and the committer below
	// consumes outcomes in beam order regardless of completion order.
	outcomes := make([]chan candOutcome, n)
	for i := range outcomes {
		outcomes[i] = make(chan candOutcome, 1)
	}
	var next atomic.Int64 // claim counter: workers take candidates in beam order
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				select {
				case <-done:
					return
				default:
				}
				outcomes[i] <- p.examine(ex.Question, db, fb, executor, candidates[i])
			}
		}()
	}

	// Commit in beam order. done only closes after outcomes 0..winner have
	// all been consumed, so no worker can skip a candidate the committer
	// still needs.
	for i := 0; i < n; i++ {
		o := <-outcomes[i]
		res.Iterations = i + 1
		res.Premises = append(res.Premises, o.premise)
		res.Errors = append(res.Errors, o.err)
		if o.verified {
			res.Final = candidates[i].Stmt
			res.FinalSQL = candidates[i].SQL
			res.Verified = true
			close(done)
			break
		}
	}
	// Wait out in-flight speculation before returning so the caller never
	// observes background reads against the database after Translate.
	wg.Wait()
}
