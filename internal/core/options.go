package core

import (
	"cyclesql/internal/nl2sql"
	"cyclesql/internal/nli"
	"cyclesql/internal/resilience"
)

// Option configures a Pipeline built by New. Options apply in call order,
// so a later option wins over an earlier one; every knob an Option sets
// may also be assigned on the struct before first use — the options exist
// so call sites state only what deviates from the defaults instead of
// threading a growing positional list.
type Option func(*Pipeline)

// New returns a pipeline with the paper's defaults — beam size 8, the
// data-grounded feedback, sequential candidate examination, no resilience
// policy, and warm per-database executor caches — customized by opts. A
// verifier must be supplied (WithVerifier) before the first Translate.
//
// This is the canonical constructor; the positional NewPipeline survives
// as a thin wrapper over it for existing callers.
func New(model nl2sql.Model, opts ...Option) *Pipeline {
	p := &Pipeline{
		Model:    model,
		Feedback: NewDataGrounded(),
		BeamSize: 8,
		execs:    &executorCache{limit: maxCachedPerDB},
	}
	for _, opt := range opts {
		opt(p)
	}
	return p
}

// WithVerifier sets the NLI verifier the loop consults per candidate.
func WithVerifier(v nli.Verifier) Option {
	return func(p *Pipeline) { p.Verifier = v }
}

// WithBenchmark names the benchmark the simulated models translate
// against (it keys the model's example lookup and the translate stage's
// breaker identity).
func WithBenchmark(name string) Option {
	return func(p *Pipeline) { p.Benchmark = name }
}

// WithBeamSize sets the candidate beam size (values < 1 keep the paper's
// default of 8).
func WithBeamSize(k int) Option {
	return func(p *Pipeline) {
		if k > 0 {
			p.BeamSize = k
		}
	}
}

// WithParallelism bounds concurrent candidate verification within one
// Translate call; 0 or 1 is the paper's sequential loop (see
// Pipeline.Parallelism — results are identical either way).
func WithParallelism(n int) Option {
	return func(p *Pipeline) { p.Parallelism = n }
}

// WithResilience arms the retry/backoff and circuit-breaker policy around
// every loop stage (see Pipeline.Resilience); nil keeps single attempts.
func WithResilience(pol *resilience.Policy) Option {
	return func(p *Pipeline) { p.Resilience = pol }
}

// WithFeedback replaces the data-grounded feedback (the Fig 9 SQL2NL
// ablation plugs its back-translation in this way); nil restores the
// default.
func WithFeedback(fb Feedback) Option {
	return func(p *Pipeline) {
		if fb == nil {
			fb = NewDataGrounded()
		}
		p.Feedback = fb
	}
}
