package core

import (
	"testing"

	"cyclesql/internal/datasets"
	"cyclesql/internal/sqleval"
	"cyclesql/internal/sqltypes"
)

func execGold(t *testing.T, bench *datasets.Benchmark, ex datasets.Example) *sqltypes.Relation {
	t.Helper()
	rel, err := sqleval.New(bench.DB(ex.DBName)).Exec(ex.Gold)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}
