package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"cyclesql/internal/datasets"
	"cyclesql/internal/nl2sql"
	"cyclesql/internal/nli"
)

// TestTranslatePreCancelled pins the contract that a dead context never
// produces a Result: both loop paths return the context's error without
// examining a single candidate.
func TestTranslatePreCancelled(t *testing.T) {
	bench := datasets.Spider()
	ex := bench.Dev[0]
	db := bench.DB(ex.DBName)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		examined := 0
		v := nli.Func{Label: "count", Fn: func(string, nli.Premise) bool { examined++; return false }}
		p := New(nl2sql.MustByName("resdsql-3b"), WithVerifier(v), WithBenchmark(bench.Name))
		p.Parallelism = workers
		res, err := p.Translate(ctx, ex, db)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism=%d: want context.Canceled, got %v", workers, err)
		}
		if res != nil {
			t.Fatalf("parallelism=%d: no Result may accompany a context error", workers)
		}
		if examined != 0 {
			t.Fatalf("parallelism=%d: %d candidates examined under a dead context", workers, examined)
		}
	}
}

// TestTranslateDeadlineMidLoop expires the context partway through the
// beam (a verifier that outlives the deadline stands in for slow
// inference) and requires Translate to stop early with the deadline
// error instead of exhausting the remaining candidates.
func TestTranslateDeadlineMidLoop(t *testing.T) {
	bench := datasets.Spider()
	ex := bench.Dev[0]
	db := bench.DB(ex.DBName)
	for _, workers := range []int{1, 2} {
		slowReject := nli.Func{Label: "slow-reject", Fn: func(string, nli.Premise) bool {
			time.Sleep(30 * time.Millisecond)
			return false
		}}
		p := New(nl2sql.MustByName("resdsql-3b"), WithVerifier(slowReject), WithBenchmark(bench.Name))
		p.Parallelism = workers
		ctx, cancel := context.WithTimeout(context.Background(), 45*time.Millisecond)
		res, err := p.Translate(ctx, ex, db)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("parallelism=%d: want context.DeadlineExceeded, got %v (res=%v)", workers, err, res)
		}
	}
}
