package core

import (
	"context"
	"math/rand"

	"cyclesql/internal/datasets"
	"cyclesql/internal/eval"
	"cyclesql/internal/nl2sql"
	"cyclesql/internal/nli"
	"cyclesql/internal/sql2nl"
	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqleval"
	"cyclesql/internal/sqlparse"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// SQL2NLFeedback is the ablation feedback generator of paper Fig 9: a
// direct SQL-to-NL back-translation with no data grounding. It is defined
// in core (rather than sql2nl) so the two feedback generators share the
// Feedback contract.
type SQL2NLFeedback struct{}

// Name implements Feedback.
func (SQL2NLFeedback) Name() string { return "sql2nl" }

// Premise implements Feedback: the explanation describes the query surface
// only, ignoring the database instance (the paper's Fig 2 failure mode).
// The description is pure in-memory work, so the context goes unused.
func (SQL2NLFeedback) Premise(_ context.Context, db *storage.Database, stmt *sqlast.SelectStmt, result *sqltypes.Relation) (nli.Premise, error) {
	return nli.Premise{
		Explanation: sql2nl.Describe(db.Schema, stmt),
		SQL:         nli.SQLOneLine(stmt.SQL()),
		Result:      resultSnippet(result),
	}, nil
}

// parseSQL re-parses the SQL text carried in a premise.
func parseSQL(sql string) (*sqlast.SelectStmt, error) { return sqlparse.Parse(sql) }

// TrainDataConfig controls verifier training-data collection.
type TrainDataConfig struct {
	// Models whose erroneous translations supply negative samples; the
	// paper harvests errors from its baseline models on the Spider train
	// split, yielding ~30k queries.
	Models []string
	// MaxExamples bounds the train-split examples visited (0 = all).
	MaxExamples int
	// Feedback generates premises; defaults to DataGrounded.
	Feedback Feedback
	// Seed drives the random representative-result selection.
	Seed int64
}

// BuildTrainingPairs implements the paper's §IV-D data-collection
// protocol on a benchmark's training split:
//
//   - positive samples pair the question with the explanation of a
//     randomly selected result of the gold query ("entailment");
//   - negative samples pair the question with the explanation of an
//     erroneous model translation — one whose execution result diverges
//     from gold ("contradiction").
//
// Negatives outnumber positives, reproducing the imbalance the focal loss
// compensates for.
//
// Collection is offline but can be long (thousands of executions), so the
// caller's context threads through every execution, translation and
// premise; cancelling it returns the pairs collected so far shuffled.
func BuildTrainingPairs(ctx context.Context, bench *datasets.Benchmark, cfg TrainDataConfig) []nli.Pair {
	fb := cfg.Feedback
	if fb == nil {
		fb = DataGrounded{}
	}
	if len(cfg.Models) == 0 {
		cfg.Models = nl2sql.ModelNames()
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	examples := bench.Train
	if cfg.MaxExamples > 0 && len(examples) > cfg.MaxExamples {
		examples = examples[:cfg.MaxExamples]
	}
	var pairs []nli.Pair
	for _, ex := range examples {
		if ctx.Err() != nil {
			break
		}
		db := bench.DB(ex.DBName)
		executor := sqleval.New(db)
		goldRel, err := executor.ExecContext(ctx, ex.Gold)
		if err != nil {
			continue
		}
		// Positive sample from the human-curated gold pair.
		if premise, err := fb.Premise(ctx, db, ex.Gold, goldRel); err == nil {
			pairs = append(pairs, nli.Pair{Hypothesis: ex.Question, Premise: premise, Label: 1})
		}
		// Negative samples from model errors: beam candidates whose
		// execution diverges from gold. Sampling a short beam (not just
		// top-1) matches the distribution the verifier faces inside the
		// feedback loop.
		negs := 0
		for _, name := range cfg.Models {
			model := nl2sql.MustByName(name)
			cands, err := nl2sql.TranslateContext(ctx, model, bench.Name, ex, db, 3)
			if err != nil {
				continue
			}
			for _, cand := range cands {
				if negs >= 6 {
					break
				}
				if eval.EXContext(ctx, db, cand.Stmt, ex.Gold) {
					continue // correct translations are not contradictions
				}
				rel, err := executor.ExecContext(ctx, cand.Stmt)
				if err != nil {
					continue
				}
				premise, err := fb.Premise(ctx, db, cand.Stmt, rel)
				if err != nil {
					continue
				}
				pairs = append(pairs, nli.Pair{Hypothesis: ex.Question, Premise: premise, Label: 0})
				negs++
			}
		}
	}
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	return pairs
}

// TrainVerifier collects pairs on the benchmark's train split and fits the
// dedicated NLI verifier with the paper's training settings. The context
// governs the collection phase; see BuildTrainingPairs.
func TrainVerifier(ctx context.Context, bench *datasets.Benchmark, dataCfg TrainDataConfig, trainCfg nli.TrainConfig) *nli.Trained {
	pairs := BuildTrainingPairs(ctx, bench, dataCfg)
	return nli.Train(pairs, trainCfg)
}

// OracleVerifier builds the perfect verifier of paper Table III: it labels
// a premise "entailment" exactly when the underlying SQL executes to the
// gold result. It inspects the SQL carried inside the premise.
func OracleVerifier(bench *datasets.Benchmark, examplesByQuestion map[string]datasets.Example) nli.Verifier {
	return nli.Func{
		Label: "oracle",
		Fn: func(hypothesis string, premise nli.Premise) bool {
			ex, ok := examplesByQuestion[hypothesis]
			if !ok {
				return false
			}
			pred, err := parseSQL(premise.SQL)
			if err != nil {
				return false
			}
			return eval.EX(bench.DB(ex.DBName), pred, ex.Gold)
		},
	}
}

// IndexByQuestion builds the oracle's lookup table for a split.
func IndexByQuestion(split []datasets.Example) map[string]datasets.Example {
	out := make(map[string]datasets.Example, len(split))
	for _, ex := range split {
		out[ex.Question] = ex
	}
	return out
}
