package core

// Resilience-layer behavior inside the loop, exercised WITHOUT the
// faultinject package (which imports core for the Feedback interface —
// importing it back here would be a cycle): hand-rolled flaky/panicking
// stubs stand in for injected chaos.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"cyclesql/internal/datasets"
	"cyclesql/internal/nl2sql"
	"cyclesql/internal/nli"
	"cyclesql/internal/resilience"
	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// flakyVerifier fails every candidate's first verify attempt with a
// transient error and delegates from the second attempt on — a remote
// verifier whose every call needs one retry. Deterministic by
// construction: the failure depends only on the attempt number the retry
// policy tags on the context, never on goroutine schedule.
type flakyVerifier struct {
	inner nli.Verifier
}

func (f flakyVerifier) Name() string                          { return f.inner.Name() }
func (f flakyVerifier) Score(h string, p nli.Premise) float64 { return f.inner.Score(h, p) }
func (f flakyVerifier) Verify(h string, p nli.Premise) bool   { return f.inner.Verify(h, p) }

func (f flakyVerifier) VerifyContext(ctx context.Context, h string, p nli.Premise) (bool, error) {
	if resilience.Attempt(ctx) < 2 {
		return false, resilience.MarkTransient(errors.New("flaky verifier"))
	}
	return nli.VerifyContext(ctx, f.inner, h, p)
}

func retryPolicy() *resilience.Policy {
	return &resilience.Policy{
		Retry:     resilience.Retry{MaxAttempts: 4, BaseDelay: 50 * time.Microsecond, MaxDelay: 500 * time.Microsecond, Seed: 7},
		Collector: &resilience.Collector{},
	}
}

// TestRetryHealsFlakyVerifierParity is the in-core retry contract: with
// retries on, a pipeline whose every verify call fails once transiently
// must produce Results identical to the fault-free pipeline — same
// Final, Verified, Iterations, Premises and (zero) Errors — at
// parallelism 1 and 4, with Retries surfacing the healed faults.
func TestRetryHealsFlakyVerifierParity(t *testing.T) {
	v := sharedVerifier(t)
	bench := datasets.Spider()
	dev := bench.Dev
	if len(dev) > 60 {
		dev = dev[:60]
	}
	model := nl2sql.MustByName("resdsql-3b")
	clean := New(model, WithVerifier(v), WithBenchmark(bench.Name))
	for _, workers := range []int{1, 4} {
		flaky := New(model, WithVerifier(flakyVerifier{inner: v}), WithBenchmark(bench.Name))
		flaky.Parallelism = workers
		flaky.Resilience = retryPolicy()
		for _, ex := range dev {
			db := bench.DB(ex.DBName)
			want, err := clean.Translate(context.Background(), ex, db)
			if err != nil {
				t.Fatal(err)
			}
			got, err := flaky.Translate(context.Background(), ex, db)
			if err != nil {
				t.Fatal(err)
			}
			if got.FinalSQL != want.FinalSQL || got.Verified != want.Verified || got.Iterations != want.Iterations {
				t.Fatalf("parallelism=%d diverges on %q:\nclean: final=%q verified=%v iter=%d\nflaky: final=%q verified=%v iter=%d",
					workers, ex.Question, want.FinalSQL, want.Verified, want.Iterations, got.FinalSQL, got.Verified, got.Iterations)
			}
			if len(got.Premises) != len(want.Premises) {
				t.Fatalf("parallelism=%d premise counts diverge on %q", workers, ex.Question)
			}
			for i := range want.Premises {
				if got.Premises[i] != want.Premises[i] {
					t.Fatalf("parallelism=%d premise %d diverges on %q", workers, i, ex.Question)
				}
				if !got.Errors[i].IsZero() {
					t.Fatalf("parallelism=%d retried-away fault leaked into Errors[%d]: %+v", workers, i, got.Errors[i])
				}
			}
			// Every examined candidate's verify needed exactly one retry.
			if got.Retries != got.Iterations {
				t.Fatalf("parallelism=%d Retries=%d, want %d (one per examined candidate) on %q",
					workers, got.Retries, got.Iterations, ex.Question)
			}
			if got.Degraded {
				t.Fatalf("no breaker configured, nothing can degrade: %q", ex.Question)
			}
		}
		if s := flaky.Resilience.Stats(); s.Retries == 0 || s.Attempts <= s.Retries {
			t.Fatalf("collector missed the healed faults: %+v", s)
		}
	}
}

// panickyFeedback panics on one candidate's premise generation — a buggy
// explainer path — and delegates for every other candidate.
type panickyFeedback struct {
	inner  Feedback
	poison string // SQL of the candidate whose Premise panics
}

func (p panickyFeedback) Name() string { return p.inner.Name() }

func (p panickyFeedback) Premise(ctx context.Context, db *storage.Database, stmt *sqlast.SelectStmt, result *sqltypes.Relation) (nli.Premise, error) {
	if stmt.SQL() == p.poison {
		panic("explainer bug")
	}
	return p.inner.Premise(ctx, db, stmt, result)
}

// TestExaminePanicRecovery closes PR 3's crash-the-process hole on BOTH
// loop paths, policy or no policy: a panic inside one candidate's chain
// becomes that candidate's StageError — tagged with the stage that blew
// up and permanent (a real bug must not be retried) — while the rest of
// the beam proceeds to the normal verdict.
func TestExaminePanicRecovery(t *testing.T) {
	bench := datasets.Spider()
	ex := bench.Dev[0]
	db := bench.DB(ex.DBName)
	poison := ex.Gold.Clone()
	lim := int64(1)
	poison.Cores[len(poison.Cores)-1].Limit = &lim
	if poison.SQL() == ex.Gold.SQL() {
		t.Fatal("candidates must render distinct SQL")
	}
	model := stubModel{cands: []nl2sql.Candidate{candidateOf(poison), candidateOf(ex.Gold)}}
	accept := nli.Func{Label: "accept-all", Fn: func(string, nli.Premise) bool { return true }}
	for _, workers := range []int{1, 4} {
		for _, policy := range []*resilience.Policy{nil, retryPolicy()} {
			p := New(model, WithVerifier(accept), WithBenchmark(bench.Name))
			p.Feedback = panickyFeedback{inner: NewDataGrounded(), poison: poison.SQL()}
			p.Parallelism = workers
			p.Resilience = policy
			res, err := p.Translate(context.Background(), ex, db)
			if err != nil {
				t.Fatalf("workers=%d policy=%v: %v", workers, policy != nil, err)
			}
			if !res.Verified || res.Iterations != 2 {
				t.Fatalf("workers=%d policy=%v: beam must survive the panic and validate candidate 2: %+v",
					workers, policy != nil, res)
			}
			se := res.Errors[0]
			if se.Stage != resilience.StageExplain || !strings.Contains(se.Err, "panic: explainer bug") {
				t.Fatalf("workers=%d policy=%v: panic must surface as the explain stage's error, got %+v",
					workers, policy != nil, se)
			}
			if se.Transient {
				t.Fatalf("a real bug's panic must be permanent, got %+v", se)
			}
			if se.Attempt != 1 {
				t.Fatalf("a permanent panic must not be retried, got attempt %d", se.Attempt)
			}
			if policy != nil && policy.Stats().PanicsRecovered == 0 {
				t.Fatal("collector must count the recovered panic")
			}
		}
	}
}

// transientPanicVerifier panics with a transient-marked error on the
// first attempt — injected chaos, not a bug — and accepts afterwards.
type transientPanicVerifier struct{}

func (transientPanicVerifier) Name() string                      { return "transient-panic" }
func (transientPanicVerifier) Score(string, nli.Premise) float64 { return 0 }
func (transientPanicVerifier) Verify(string, nli.Premise) bool   { return true }

func (transientPanicVerifier) VerifyContext(ctx context.Context, _ string, _ nli.Premise) (bool, error) {
	if resilience.Attempt(ctx) < 2 {
		panic(resilience.MarkTransient(errors.New("injected panic")))
	}
	return true, nil
}

// TestTransientPanicRetried: a panic whose value is a transient-marked
// error is chaos, not a bug — the retry policy rerolls it and the
// candidate still validates.
func TestTransientPanicRetried(t *testing.T) {
	bench := datasets.Spider()
	ex := bench.Dev[0]
	db := bench.DB(ex.DBName)
	p := New(stubModel{cands: []nl2sql.Candidate{candidateOf(ex.Gold)}}, WithVerifier(transientPanicVerifier{}), WithBenchmark(bench.Name))
	p.Resilience = retryPolicy()
	res, err := p.Translate(context.Background(), ex, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.Retries != 1 || !res.Errors[0].IsZero() {
		t.Fatalf("transient panic must be retried away: %+v", res)
	}
	if p.Resilience.Stats().PanicsRecovered != 1 {
		t.Fatalf("stats = %+v, want 1 panic recovered", p.Resilience.Stats())
	}
}

// downVerifier always fails transiently: a verifier service that is down.
type downVerifier struct{}

func (downVerifier) Name() string                      { return "down" }
func (downVerifier) Score(string, nli.Premise) float64 { return 0 }
func (downVerifier) Verify(string, nli.Premise) bool   { return false }

func (downVerifier) VerifyContext(context.Context, string, nli.Premise) (bool, error) {
	return false, resilience.MarkTransient(errors.New("verifier down"))
}

// TestVerifierBreakerDegradesGracefully: a dead verifier trips the
// verify-stage breaker after the configured consecutive exhaustions, and
// the loop then degrades — it stops burning candidates, returns the
// best-scored (top-1) candidate unverified, and flags the Result — rather
// than erroring the translation.
func TestVerifierBreakerDegradesGracefully(t *testing.T) {
	bench := datasets.Spider()
	ex := bench.Dev[0]
	db := bench.DB(ex.DBName)
	second := ex.Gold.Clone()
	lim := int64(1)
	second.Cores[len(second.Cores)-1].Limit = &lim
	model := stubModel{cands: []nl2sql.Candidate{candidateOf(ex.Gold), candidateOf(second)}}
	policy := &resilience.Policy{
		Retry:     resilience.Retry{MaxAttempts: 2, BaseDelay: 50 * time.Microsecond, MaxDelay: 200 * time.Microsecond},
		Breaker:   resilience.BreakerConfig{Threshold: 1, Cooldown: time.Hour},
		Collector: &resilience.Collector{},
	}
	p := New(model, WithVerifier(downVerifier{}), WithBenchmark(bench.Name))
	p.Resilience = policy
	res, err := p.Translate(context.Background(), ex, db)
	if err != nil {
		t.Fatal(err)
	}
	// Candidate 1 exhausts its retry budget and trips the breaker;
	// candidate 2 finds the circuit open and the loop degrades on the spot.
	if !res.Degraded || res.Verified {
		t.Fatalf("want degraded unverified result, got %+v", res)
	}
	if res.FinalSQL != ex.Gold.SQL() {
		t.Fatalf("degraded translation must fall back to the best-scored candidate, got %q", res.FinalSQL)
	}
	if res.Iterations != 2 {
		t.Fatalf("loop must stop at the open circuit, got %d iterations", res.Iterations)
	}
	if se := res.Errors[0]; se.Stage != resilience.StageVerify || se.Attempt != 2 || !se.Transient {
		t.Fatalf("candidate 1 must record the exhausted verify attempts, got %+v", se)
	}
	if se := res.Errors[1]; se.Stage != resilience.StageVerify || se.Err != "circuit open" || se.Attempt != 0 {
		t.Fatalf("candidate 2 must record the open circuit without running, got %+v", se)
	}
	s := policy.Stats()
	if s.BreakerTrips < 1 || s.Degraded != 1 {
		t.Fatalf("stats = %+v, want >=1 trip and 1 degraded", s)
	}
}

// TestDegradationParityWithPreTrippedBreaker pins that the parallel
// committer handles degradation exactly like the sequential loop when the
// breaker state is deterministic: with the verify circuit already open,
// both paths degrade at candidate 1 with the top-1 fallback.
func TestDegradationParityWithPreTrippedBreaker(t *testing.T) {
	bench := datasets.Spider()
	ex := bench.Dev[0]
	db := bench.DB(ex.DBName)
	second := ex.Gold.Clone()
	lim := int64(1)
	second.Cores[len(second.Cores)-1].Limit = &lim
	model := stubModel{cands: []nl2sql.Candidate{candidateOf(ex.Gold), candidateOf(second)}}
	accept := nli.Func{Label: "accept-all", Fn: func(string, nli.Premise) bool { return true }}
	for _, workers := range []int{1, 2} {
		policy := &resilience.Policy{
			Breaker:   resilience.BreakerConfig{Threshold: 1, Cooldown: time.Hour},
			Collector: &resilience.Collector{},
		}
		// Trip the verify circuit before the loop ever runs.
		br := policy.BreakerFor(resilience.StageVerify)
		if !br.Allow() {
			t.Fatal("fresh breaker must admit")
		}
		br.Record(false)
		p := New(model, WithVerifier(accept), WithBenchmark(bench.Name))
		p.Parallelism = workers
		p.Resilience = policy
		res, err := p.Translate(context.Background(), ex, db)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Degraded || res.Verified || res.Iterations != 1 || res.FinalSQL != ex.Gold.SQL() {
			t.Fatalf("parallelism=%d: want degradation at candidate 1 with top-1 fallback, got %+v", workers, res)
		}
		if se := res.Errors[0]; se.Stage != resilience.StageVerify || se.Err != "circuit open" {
			t.Fatalf("parallelism=%d: candidate 1 must record the open circuit, got %+v", workers, se)
		}
	}
}

// TestRetryBackoffHonorsCancellationInLoop mirrors verifycancel_test.go
// at the loop level: a Translate cancelled while a candidate's retry is
// inside its backoff returns the context error promptly instead of
// finishing the wait.
func TestRetryBackoffHonorsCancellationInLoop(t *testing.T) {
	bench := datasets.Spider()
	ex := bench.Dev[0]
	db := bench.DB(ex.DBName)
	entered := make(chan struct{})
	var once sync.Once
	v := funcContextVerifier{fn: func(ctx context.Context) (bool, error) {
		once.Do(func() { close(entered) })
		return false, resilience.MarkTransient(errors.New("always failing"))
	}}
	p := New(stubModel{cands: []nl2sql.Candidate{candidateOf(ex.Gold)}}, WithVerifier(v), WithBenchmark(bench.Name))
	p.Resilience = &resilience.Policy{
		// An hour of backoff: returning promptly proves the sleep aborted.
		Retry: resilience.Retry{MaxAttempts: 3, BaseDelay: time.Hour, MaxDelay: time.Hour},
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.Translate(ctx, ex, db)
		done <- err
	}()
	<-entered // the first verify attempt failed; the retry is heading into backoff
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Translate did not abandon the retry backoff on cancellation")
	}
}

// funcContextVerifier adapts a closure into an nli.ContextVerifier.
type funcContextVerifier struct {
	fn func(ctx context.Context) (bool, error)
}

func (funcContextVerifier) Name() string                      { return "func-ctx" }
func (funcContextVerifier) Score(string, nli.Premise) float64 { return 0 }
func (v funcContextVerifier) Verify(string, nli.Premise) bool {
	ok, _ := v.fn(context.Background())
	return ok
}
func (v funcContextVerifier) VerifyContext(ctx context.Context, _ string, _ nli.Premise) (bool, error) {
	return v.fn(ctx)
}
