package core

import "sync"

// boundedCache is the small per-database cache the pipeline and the
// data-grounded feedback share for executors and explainers. At the limit
// it evicts one arbitrary entry instead of clearing, so a workload that
// interleaves more databases than the limit (the experiment drivers sweep
// dev examples across many databases) degrades gracefully rather than
// losing every warm entry at once.
//
// The cache is safe for concurrent use: callers sharing one Pipeline
// across goroutines — or one feedback across parallel candidates — hit
// these maps simultaneously, so every access runs under the mutex.
type boundedCache[K comparable, V any] struct {
	limit int
	mu    sync.Mutex
	m     map[K]V
}

func (c *boundedCache[K, V]) get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[k]
	return v, ok
}

func (c *boundedCache[K, V]) put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store(k, v)
}

// getOrCreate returns the cached value for k, building and caching it with
// build on a miss. The whole round-trip is atomic, so concurrent callers
// racing on a cold key share one value — which is what lets parallel
// candidate verification share a single executor (and explainer) per
// database instead of compiling plans once per goroutine.
func (c *boundedCache[K, V]) getOrCreate(k K, build func() V) V {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.m[k]; ok {
		return v
	}
	v := build()
	c.store(k, v)
	return v
}

// store must be called with c.mu held.
func (c *boundedCache[K, V]) store(k K, v V) {
	if c.m == nil {
		c.m = make(map[K]V, c.limit)
	} else if len(c.m) >= c.limit {
		for evict := range c.m {
			delete(c.m, evict)
			break
		}
	}
	c.m[k] = v
}
