package core

// boundedCache is the small per-database cache the pipeline and the
// data-grounded feedback share for executors and explainers. At the limit
// it evicts one arbitrary entry instead of clearing, so a workload that
// interleaves more databases than the limit (the experiment drivers sweep
// dev examples across many databases) degrades gracefully rather than
// losing every warm entry at once.
type boundedCache[K comparable, V any] struct {
	limit int
	m     map[K]V
}

func (c *boundedCache[K, V]) get(k K) (V, bool) {
	v, ok := c.m[k]
	return v, ok
}

func (c *boundedCache[K, V]) put(k K, v V) {
	if c.m == nil {
		c.m = make(map[K]V, c.limit)
	} else if len(c.m) >= c.limit {
		for evict := range c.m {
			delete(c.m, evict)
			break
		}
	}
	c.m[k] = v
}
