// Package core implements CycleSQL itself (paper Fig 3): a plug-and-play
// iterative feedback loop around any end-to-end NL2SQL model. For each
// candidate translation, the loop executes the SQL, tracks the provenance
// of a sampled result tuple, enriches it with operation-level semantics,
// generates a data-grounded NL explanation, and asks the NLI verifier
// whether the explanation entails the original question. The first
// candidate whose explanation validates becomes the translation; if none
// validates, the model's top-1 candidate is returned (paper §V-A1,
// inference settings).
//
// Concurrency: a Pipeline is safe for concurrent Translate calls, and the
// Parallelism knob additionally verifies the beam candidates of one call
// concurrently (see Pipeline.Parallelism). Candidates are independent
// until one validates, so speculative parallel verification commits
// results in beam order and returns a Result identical to the sequential
// loop — Iterations still counts candidates in beam order (paper Fig 8a).
// The stock Feedback and Verifier implementations are safe for concurrent
// use; custom ones must be too before raising Parallelism above 1.
//
// Resilience: a Pipeline optionally carries a resilience.Policy that
// wraps every stage of the loop — translate, execute, explain, verify —
// with retry/backoff for transient infrastructure faults and a per-stage
// circuit breaker (see internal/resilience). Panics inside a candidate's
// chain are recovered into typed StageErrors on both the sequential and
// parallel paths, so a crashing model call fails one candidate instead of
// the process. When the verify breaker is open the loop degrades
// gracefully: it stops burning candidates against a dead verifier and
// returns the best-scored unverified candidate with Result.Degraded set.
// A nil policy reproduces the pre-resilience behavior exactly (single
// attempts, no breakers) at zero added allocation.
//
// Cancellation: Translate takes a context.Context that threads through
// every candidate's execute → explain chain down to the SQL executor's
// inner loops (sqleval.Executor.ExecContext), so cancelling it — the
// batch experiment driver's per-example timeout, or a caller shutting
// down — aborts the loop mid-query and Translate returns the context's
// error. Internally the parallel path derives a per-call context that it
// cancels as soon as a candidate validates, which aborts the in-flight
// speculative work of later candidates — SQL executions mid-query, and,
// through nli.VerifyContext, a context-aware verifier's simulated
// inference mid-wait — instead of letting them run to completion; their
// discarded outcomes never affect the Result, so the beam-order parity
// guarantee above is unchanged.
package core

import (
	"context"
	"fmt"
	"time"

	"cyclesql/internal/datasets"
	"cyclesql/internal/explain"
	"cyclesql/internal/nl2sql"
	"cyclesql/internal/nli"
	"cyclesql/internal/resilience"
	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqleval"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// Feedback generates the self-provided feedback (the premise) for one
// candidate translation. The default is CycleSQL's data-grounded
// explanation; the SQL2NL ablation (paper Fig 9) plugs in a query-surface
// back-translation instead. Premise must honor ctx: the loop cancels it
// to abort speculative feedback generation for candidates that can no
// longer win.
type Feedback interface {
	Name() string
	Premise(ctx context.Context, db *storage.Database, stmt *sqlast.SelectStmt, result *sqltypes.Relation) (nli.Premise, error)
}

// DataGrounded is CycleSQL's own feedback: provenance-based explanations.
type DataGrounded struct {
	// Polish optionally refines explanation fluency; verification uses the
	// raw mechanical text either way (the paper polishes only for users).
	Polish explain.Polisher
	// shared, when non-nil, keeps one explainer per database alive across
	// candidates — and across Translate calls that interleave databases,
	// as the experiment drivers do — so provenance queries reuse compiled
	// statements. The zero value stays stateless (a fresh explainer per
	// call).
	shared *explainerCache
}

// explainerCache holds the per-database explainers DataGrounded reuses,
// bounded because test-suite distillation can sweep many short-lived
// database clones through one feedback.
type explainerCache = boundedCache[*storage.Database, *explain.Explainer]

// maxCachedPerDB bounds the pipeline's per-database executor and explainer
// caches.
const maxCachedPerDB = 8

// NewDataGrounded returns a DataGrounded feedback that reuses one explainer
// (and its compiled provenance statements) per database across candidates.
func NewDataGrounded() DataGrounded {
	return DataGrounded{shared: &explainerCache{limit: maxCachedPerDB}}
}

// Name implements Feedback.
func (DataGrounded) Name() string { return "cyclesql" }

func (d DataGrounded) explainer(db *storage.Database) *explain.Explainer {
	build := func() *explain.Explainer {
		e := explain.New(db)
		// Polish is fixed at construction: reassigning it on every call
		// would be a write-on-read of the shared cached explainer, racing
		// as soon as two goroutines share the feedback. Set d.Polish
		// before the first Premise call; later changes only affect
		// explainers built for databases not yet cached.
		e.Polish = d.Polish
		return e
	}
	if d.shared == nil {
		return build()
	}
	return d.shared.getOrCreate(db, build)
}

// Premise implements Feedback. It is safe for concurrent use: the cached
// explainers are concurrency-safe and the cache hands concurrent callers
// one shared explainer per database.
func (d DataGrounded) Premise(ctx context.Context, db *storage.Database, stmt *sqlast.SelectStmt, result *sqltypes.Relation) (nli.Premise, error) {
	e := d.explainer(db)
	// The paper explains one representative result tuple; the first row is
	// the deterministic choice (training randomizes, inference does not).
	exp, err := e.ExplainContext(ctx, stmt, result, 0)
	if err != nil {
		return nli.Premise{}, err
	}
	return nli.Premise{
		Explanation: exp.Text,
		SQL:         nli.SQLOneLine(stmt.SQL()),
		Result:      resultSnippet(result),
	}, nil
}

// Result is the outcome of one CycleSQL translation.
type Result struct {
	Final      *sqlast.SelectStmt
	FinalSQL   string
	Verified   bool
	Iterations int // candidates examined (paper Fig 8a)
	Candidates []nl2sql.Candidate
	// Premises holds the feedback generated per examined candidate, in
	// order; Premises[i] corresponds to Candidates[i].
	Premises []nli.Premise
	// Errors records, per examined candidate, why no verdict could be
	// reached (the zero StageError when the chain completed): the failing
	// stage, the final attempt's error, and how many attempts the retry
	// policy consumed — only the final attempt is kept, so a high-fault
	// chaos sweep cannot grow the Result without bound. Errors[i]
	// corresponds to Candidates[i]. A premise-less candidate can still
	// become Final through the top-1 fallback, so drivers use this to
	// distinguish "failed to execute" from "examined but not verified".
	Errors []resilience.StageError
	// Retries counts the transient re-attempts the resilience policy
	// consumed across the translate stage and the examined candidates —
	// the faults that were retried away and so appear nowhere in Errors.
	// It is deterministic for a deterministic fault source, so parity
	// suites can compare it across parallelism levels.
	Retries int
	// Degraded marks a translation that could not be verified because the
	// verify-stage circuit breaker was open: the loop stopped burning
	// candidates against a dead verifier and fell back to the best-scored
	// unverified candidate. Verified is always false when Degraded is set.
	Degraded bool
	// Overhead is the wall-clock cost of the feedback loop itself
	// (execution + explanation + verification), excluding model inference.
	Overhead time.Duration
}

// Pipeline wires a translation model, a feedback generator and a verifier
// into the CycleSQL loop.
type Pipeline struct {
	Model     nl2sql.Model
	Verifier  nli.Verifier
	Feedback  Feedback
	BeamSize  int
	Benchmark string

	// Parallelism bounds how many beam candidates are verified
	// concurrently within one Translate call. 0 or 1 reproduces the
	// paper's sequential loop bit for bit; higher values execute, explain
	// and verify candidates speculatively on a worker pool while results
	// commit in beam order, so Final, Verified, Iterations, Premises and
	// Errors are identical to the sequential loop either way. Candidates
	// after the first (beam-order) validated one are not started; work
	// already in flight is left to finish and discarded. With Parallelism
	// > 1 the Feedback and Verifier must be safe for concurrent use (the
	// implementations in this repository are).
	Parallelism int

	// Resilience, when non-nil, wraps every loop stage with the policy's
	// retry/backoff and per-stage circuit breakers, and recovers stage
	// panics into StageErrors (see the package comment). Policies are
	// meant to be shared: every pipeline of a sweep holding the same
	// *Policy shares its breakers and reliability counters. A nil policy
	// means single attempts and no breakers — the pre-resilience loop.
	Resilience *resilience.Policy

	// execs, when non-nil, keeps one executor per database alive across
	// Translate calls. Beam candidates are fresh ASTs per call, but their
	// SQL text recurs across beams, and the executor's plan cache is keyed
	// by canonical SQL — so a persistent executor skips recompiling them
	// even when the caller interleaves examples from different databases.
	// The zero value stays stateless (a fresh executor per Translate).
	execs *executorCache
}

// executorCache holds the per-database executors the pipeline reuses.
type executorCache = boundedCache[*storage.Database, *sqleval.Executor]

func (p *Pipeline) executor(db *storage.Database) *sqleval.Executor {
	if p.execs == nil {
		return sqleval.New(db)
	}
	return p.execs.getOrCreate(db, func() *sqleval.Executor { return sqleval.New(db) })
}

// NewPipeline returns a pipeline with the paper's inference settings:
// beam size 8 for Seq2seq-style models (callers lower it to 5 for
// LLM-style models, matching the paper's API parameter).
//
// Deprecated: use New with functional options — New(model,
// WithVerifier(verifier), WithBenchmark(benchmark)) is the equivalent
// call, and the options compose where the positional list cannot grow.
func NewPipeline(model nl2sql.Model, verifier nli.Verifier, benchmark string) *Pipeline {
	return New(model, WithVerifier(verifier), WithBenchmark(benchmark))
}

// Translate runs the feedback loop for one example. Cancelling ctx aborts
// the loop — including any SQL execution in flight, which the executor
// interrupts mid-query — and Translate returns the context's error; a
// Result is never returned alongside one, so callers cannot mistake a
// half-examined beam for a real outcome.
func (p *Pipeline) Translate(ctx context.Context, ex datasets.Example, db *storage.Database) (*Result, error) {
	if p.Model == nil || p.Verifier == nil {
		return nil, fmt.Errorf("core: pipeline needs a model and a verifier")
	}
	if ctx == nil {
		//vetcycle:allow ctxflow -- nil-ctx guard for legacy callers; nothing upstream to thread
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	fb := p.Feedback
	if fb == nil {
		fb = DataGrounded{}
	}
	k := p.BeamSize
	if k <= 0 {
		k = 8
	}
	candidates, translateRetries, err := p.beam(ctx, ex, db, k)
	if err != nil {
		return nil, err
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("core: model %s produced no candidates", p.Model.Name())
	}
	res := &Result{Candidates: candidates, Retries: translateRetries}
	start := time.Now()
	defer func() { res.Overhead = time.Since(start) }()
	// One executor serves every candidate — and, when the pipeline came
	// from NewPipeline, persists across Translate calls so textually
	// recurring candidates reuse compiled plans (the cache is keyed by
	// canonical SQL, not AST identity). The executor is safe for
	// concurrent Exec, so the parallel path shares it across workers.
	executor := p.executor(db)
	if p.Parallelism > 1 && len(candidates) > 1 {
		p.runParallel(ctx, res, ex, db, fb, executor, candidates)
	} else {
		p.runSequential(ctx, res, ex, db, fb, executor, candidates)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !res.Verified {
		// No candidate validated — or the verify breaker forced graceful
		// degradation: the best-scored (top-1) candidate is the outcome.
		res.Final = candidates[0].Stmt
		res.FinalSQL = candidates[0].SQL
	}
	if res.Degraded {
		p.Resilience.Collect().AddDegraded()
	}
	return res, nil
}

// beam produces the candidate list, running the model's inference as the
// translate stage of the resilience policy (when one is configured):
// transient beam faults are retried within ctx's budget, and a panicking
// model fails the translation instead of the process. Without a policy
// the call is direct — plus cancellation awareness via
// nl2sql.TranslateContext — at no added allocation.
func (p *Pipeline) beam(ctx context.Context, ex datasets.Example, db *storage.Database, k int) ([]nl2sql.Candidate, int, error) {
	if p.Resilience == nil {
		cands, err := nl2sql.TranslateContext(ctx, p.Model, p.Benchmark, ex, db, k)
		return cands, 0, err
	}
	var cands []nl2sql.Candidate
	se, attempts, _ := p.stage(ctx, resilience.StageTranslate, p.Benchmark+"\x00"+ex.ID, func(ctx context.Context) error {
		var err error
		cands, err = nl2sql.TranslateContext(ctx, p.Model, p.Benchmark, ex, db, k)
		return err
	})
	retries := 0
	if attempts > 1 {
		retries = attempts - 1
	}
	if !se.IsZero() {
		if err := ctx.Err(); err != nil {
			return nil, retries, err
		}
		return nil, retries, fmt.Errorf("core: %w", error(se))
	}
	return cands, retries, nil
}

// runSequential is the paper's loop: examine candidates one at a time in
// beam order, stopping at the first validated one — or at cancellation,
// which Translate converts into an error return, or at verify-breaker
// degradation, which stops the loop on the spot (every later candidate
// would hit the same open circuit).
func (p *Pipeline) runSequential(ctx context.Context, res *Result, ex datasets.Example, db *storage.Database, fb Feedback, executor *sqleval.Executor, candidates []nl2sql.Candidate) {
	for i, cand := range candidates {
		if ctx.Err() != nil {
			return
		}
		o := p.examine(ctx, ex.Question, db, fb, executor, cand)
		res.Iterations = i + 1
		res.Premises = append(res.Premises, o.premise)
		res.Errors = append(res.Errors, o.err)
		res.Retries += o.retries
		if o.degraded {
			res.Degraded = true
			return
		}
		if o.verified {
			res.Final = cand.Stmt
			res.FinalSQL = cand.SQL
			res.Verified = true
			return
		}
	}
}

// candOutcome is the result of examining one candidate: its feedback
// premise (or the stage error that prevented one), the verifier's
// verdict, the transient re-attempts consumed along the way, and whether
// an open verify breaker forced degradation.
type candOutcome struct {
	premise  nli.Premise
	err      resilience.StageError
	verified bool
	retries  int
	degraded bool
}

// examine runs the execute → explain → verify chain for one candidate.
// Both the sequential loop and the parallel workers go through it, so the
// two paths produce identical premises, errors and verdicts by
// construction. A cancelled ctx surfaces as an error outcome tagged with
// the stage that observed it; callers that care (the parallel committer
// discarding in-flight losers, Translate's error return) check the
// context itself rather than the record. The verdict runs through
// nli.VerifyContext, so a verifier with real inference waits (an
// nli.ContextVerifier, e.g. nli.Latency) abandons them the moment the
// candidate can no longer win. A panic anywhere in the chain — a buggy or
// fault-injected model call — is recovered into the running stage's
// StageError on both paths, so one crashing candidate cannot take down
// the process (or the parallel pool). With a Resilience policy the chain
// additionally retries transient faults and consults the per-stage
// breakers (examineResilient).
func (p *Pipeline) examine(ctx context.Context, question string, db *storage.Database, fb Feedback, executor *sqleval.Executor, cand nl2sql.Candidate) (out candOutcome) {
	if p.Resilience != nil {
		return p.examineResilient(ctx, question, db, fb, executor, cand)
	}
	// The policy-free fast path: single attempts, no breakers, and — by
	// construction — zero allocation beyond the pre-resilience loop. The
	// stage marker makes the recover below attribute a panic correctly.
	stage := resilience.StageExecute
	out.premise = nli.Premise{SQL: cand.SQL}
	defer func() {
		if v := recover(); v != nil {
			perr := resilience.Recovered(v)
			out.err = resilience.StageError{Stage: stage, Attempt: 1, Err: perr.Error(), Transient: resilience.IsTransient(perr)}
			out.verified = false
		}
	}()
	rel, err := executor.ExecContext(ctx, cand.Stmt)
	if err != nil {
		// Invalid SQL can never validate; record an empty premise with the
		// failure and move on.
		out.err = resilience.StageError{Stage: stage, Attempt: 1, Err: err.Error()}
		return out
	}
	stage = resilience.StageExplain
	premise, err := fb.Premise(ctx, db, cand.Stmt, rel)
	if err != nil {
		out.err = resilience.StageError{Stage: stage, Attempt: 1, Err: err.Error()}
		return out
	}
	out.premise = premise
	stage = resilience.StageVerify
	verified, err := nli.VerifyContext(ctx, p.Verifier, question, premise)
	if err != nil {
		out.err = resilience.StageError{Stage: stage, Attempt: 1, Err: err.Error()}
		return out
	}
	out.verified = verified
	return out
}

// Baseline returns the model's unassisted top-1 translation, the "Base"
// rows of the paper's tables.
func (p *Pipeline) Baseline(ex datasets.Example, db *storage.Database) (*sqlast.SelectStmt, error) {
	//vetcycle:allow ctxflow -- documented one-shot wrapper over BaselineContext
	return p.BaselineContext(context.Background(), ex, db)
}

// BaselineContext is Baseline under a context: cancellable for a
// ContextModel, and run as the translate stage of the resilience policy
// when one is configured — so a chaos sweep's baseline rows heal from
// transient beam faults exactly as the loop's own beam does.
func (p *Pipeline) BaselineContext(ctx context.Context, ex datasets.Example, db *storage.Database) (*sqlast.SelectStmt, error) {
	candidates, _, err := p.beam(ctx, ex, db, 1)
	if err != nil {
		return nil, err
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("core: model %s produced no candidates", p.Model.Name())
	}
	return candidates[0].Stmt, nil
}

// resultSnippet renders a compact textual form of a result relation for
// the premise: row count plus up to the first two rows.
func resultSnippet(rel *sqltypes.Relation) string {
	if rel == nil {
		return "no result"
	}
	out := fmt.Sprintf("%d rows", rel.NumRows())
	limit := rel.NumRows()
	if limit > 2 {
		limit = 2
	}
	for r := 0; r < limit; r++ {
		out += " ;"
		for c, v := range rel.Rows[r] {
			if c >= 4 {
				break
			}
			out += " " + v.String()
		}
	}
	return out
}
