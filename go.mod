module cyclesql

go 1.24
