package cyclesql

import (
	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqlparse"
)

func parse(sql string) (*sqlast.SelectStmt, error) { return sqlparse.Parse(sql) }
